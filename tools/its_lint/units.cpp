// units.cpp — the units-* family: a typedef-aware dimension analysis.
//
// The quantity aliases in src/util/types.h (SimTime, Duration, VirtAddr,
// PhysAddr, Vpn, Pfn, Bytes) are plain uint64_t typedefs so the golden-run
// suite stays bit-identical; the compiler therefore accepts any mix of
// them.  This pass supplies the missing dimension check:
//
//   pass A  walks every declaration (members, locals, params, function
//           return types) and builds per-file and whole-program maps from
//           identifier -> dimension.  A declaration with a *raw* arithmetic
//           type shadows the global map for that file, so a local
//           `double t` never inherits a distant `SimTime t`'s dimension.
//   pass B  walks expressions: binary operators, assignments (including
//           += / -=), call edges against registered signatures, page-shift
//           idioms, narrowing casts and raw time-scale literals.
//
// The algebra enforced (documented in util/types.h):
//   SimTime - SimTime -> Duration        SimTime + Duration -> SimTime
//   Duration ± Duration -> Duration      SimTime + SimTime  -> finding
//   time {+,-,<,==,*,...} bytes/pages/addresses -> finding
//   Duration * Duration, Duration * count -> finding (use checked helpers)
//
// Like every its_lint pass this is a tokenizer, not a compiler front end:
// operands it cannot resolve are skipped, never guessed, and every rule
// honours `// its-lint: allow(units-...): reason`.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace its::lint {

namespace {

namespace fs = std::filesystem;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::vector<std::string> collect_tree(const std::string& dir,
                                      std::vector<std::string>* errors) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec))
    if (it->is_regular_file() && cpp_source(it->path()))
      files.push_back(it->path().generic_string());
  if (ec) errors->push_back(dir + ": " + ec.message());
  std::sort(files.begin(), files.end());
  return files;
}

std::string joined_code(const SourceFile& f) {
  std::string text;
  for (const std::string& l : f.code_lines) {
    text += l;
    text += '\n';
  }
  return text;
}

std::size_t line_at(std::string_view text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

std::string read_ident(std::string_view text, std::size_t i,
                       std::size_t* end) {
  std::size_t j = i;
  while (j < text.size() && ident_char(text[j])) ++j;
  *end = j;
  return std::string(text.substr(i, j - i));
}

std::size_t skip_balanced(std::string_view text, std::size_t open, char o,
                          char c) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == o) ++depth;
    if (text[i] == c && --depth == 0) return i + 1;
  }
  return text.size();
}

/// apply_suppressions both filters and *reports* malformed directives; the
/// determinism pass already reports those for every src file, so this pass
/// filters only (same contract as the arch and conc passes).
std::vector<Finding> filter_suppressed(const SourceFile& f,
                                       std::vector<Finding> findings) {
  std::vector<Finding> out = apply_suppressions(f, std::move(findings));
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const Finding& fi) {
                             return fi.rule == Rule::kBadSuppress;
                           }),
            out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Dimensions.

/// kShadow marks an identifier declared with a raw arithmetic type: it
/// carries no dimension but blocks global-map fallback (and poisons the
/// whole-program entry when the same name is dimensioned elsewhere).
enum class Dim { kNone, kTime, kDur, kAddr, kPage, kBytes, kCount, kShadow };

Dim alias_dim(std::string_view name) {
  if (name == "SimTime") return Dim::kTime;
  if (name == "Duration") return Dim::kDur;
  if (name == "VirtAddr" || name == "PhysAddr") return Dim::kAddr;
  if (name == "Vpn" || name == "Pfn") return Dim::kPage;
  if (name == "Bytes") return Dim::kBytes;
  return Dim::kNone;
}

bool time_like(Dim d) { return d == Dim::kTime || d == Dim::kDur; }
bool space_like(Dim d) {
  return d == Dim::kAddr || d == Dim::kPage || d == Dim::kBytes;
}
bool dimensioned(Dim d) { return time_like(d) || space_like(d); }

std::string_view dim_name(Dim d) {
  switch (d) {
    case Dim::kTime: return "SimTime (a point in time)";
    case Dim::kDur: return "Duration";
    case Dim::kAddr: return "an address";
    case Dim::kPage: return "a page number";
    case Dim::kBytes: return "a byte count";
    case Dim::kCount: return "a count";
    default: return "an untyped quantity";
  }
}

/// Raw arithmetic type keywords that introduce shadow declarations.
bool raw_type_word(std::string_view w) {
  static const std::set<std::string_view> kRaw = {
      "uint64_t", "uint32_t", "uint16_t", "uint8_t", "int64_t",  "int32_t",
      "int16_t",  "int8_t",   "size_t",   "int",     "unsigned", "long",
      "short",    "char",     "bool",     "double",  "float",    "auto",
      "uintptr_t", "intptr_t", "ptrdiff_t", "uint_fast32_t"};
  return kRaw.count(w) != 0;
}

/// The subset of raw types whose vocabulary-matched declarations fire
/// units-alias-decl (wide enough to hold the quantity the name claims).
/// size_t stays out: size_t declarations are indexes and cursors, and the
/// simulator's quantities are all uint64_t.
bool alias_capable_type(std::string_view w) {
  return w == "uint64_t" || w == "int64_t" ||
         w == "uintptr_t" || w == "double" || w == "unsigned" || w == "long";
}

/// Narrow targets for units-narrow (32-bit or floating).
bool narrow_type_word(std::string_view w) {
  return w == "uint32_t" || w == "int32_t" || w == "uint16_t" ||
         w == "int16_t" || w == "int" || w == "unsigned" || w == "float" ||
         w == "double";
}

bool keyword_operand(std::string_view w) {
  static const std::set<std::string_view> kKw = {
      "return",  "case",     "goto",   "throw",  "if",       "while",
      "for",     "sizeof",   "new",    "delete", "else",     "operator",
      "template", "typename", "const",  "static", "constexpr", "using",
      "namespace", "struct",  "class",  "enum",   "switch",   "do",
      "public",  "private",  "protected", "true", "false",   "nullptr",
      "this",    "void",     "inline", "friend", "default",  "break",
      "continue", "co_return", "co_await", "static_cast", "reinterpret_cast",
      "const_cast", "dynamic_cast", "alignas", "alignof", "noexcept"};
  return kKw.count(w) != 0;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Last '_'-separated component of a (lowercased) identifier.
std::string head_word(const std::string& name) {
  std::string n = lower(name);
  while (!n.empty() && n.back() == '_') n.pop_back();
  std::size_t us = n.rfind('_');
  return us == std::string::npos ? n : n.substr(us + 1);
}

/// Which dimension an identifier's vocabulary claims, if any.
Dim vocab_dim(const std::string& name) {
  static const std::set<std::string_view> kTime = {
      "ns",       "time",     "latency",  "deadline", "cost",    "delay",
      "timeout",  "elapsed",  "duration", "backoff",  "period",  "makespan",
      "wait",     "slack",    "interval", "quantum",  "span",    "at",
      "now",      "clock",    "timestamp", "expiry",  "stall"};
  static const std::set<std::string_view> kAddr = {"addr", "address", "vaddr",
                                                   "paddr"};
  static const std::set<std::string_view> kPage = {"vpn", "pfn"};
  const std::string head = head_word(name);
  if (kTime.count(head) != 0) return Dim::kTime;
  if (kAddr.count(head) != 0) return Dim::kAddr;
  if (kPage.count(head) != 0) return Dim::kPage;
  if (head == "bytes") return Dim::kBytes;
  return Dim::kNone;
}

/// Count-vocabulary identifiers: legitimately raw, but participate in the
/// Duration*count overflow rule.
bool count_vocab(const std::string& name) {
  static const std::set<std::string_view> kCount = {
      "count", "counts", "n",       "num",        "repeat", "repeats",
      "iters", "iterations", "entries", "len",    "length", "pages",
      "frames", "slots",  "ops",    "instrs",     "instructions", "retries",
      "attempts", "jobs", "workers", "lanes",     "samples", "trials"};
  return kCount.count(head_word(name)) != 0;
}

/// Rate / ratio doubles are dimensionless by design.
bool rate_name(const std::string& name) {
  const std::string n = lower(name);
  return n.find("per") != std::string::npos ||
         n.find("ratio") != std::string::npos ||
         n.find("frac") != std::string::npos ||
         n.find("rate") != std::string::npos ||
         n.find("avg") != std::string::npos ||
         n.find("mean") != std::string::npos ||
         n.find("util") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Registries.

struct FnSig {
  Dim ret = Dim::kNone;
  std::vector<Dim> params;
  bool params_known = false;
  bool conflict = false;
};

struct Registry {
  std::map<std::string, Dim> vars;  ///< Members/globals; kShadow = poisoned.
  std::map<std::string, FnSig> fns;

  void merge_var(const std::string& name, Dim d) {
    auto it = vars.find(name);
    if (it == vars.end()) {
      vars.emplace(name, d);
    } else if (it->second != d) {
      it->second = Dim::kShadow;  // conflicting claims: never resolve
    }
  }

  void merge_fn(const std::string& name, const FnSig& sig) {
    auto it = fns.find(name);
    if (it == fns.end()) {
      fns.emplace(name, sig);
      return;
    }
    FnSig& have = it->second;
    if (have.ret != sig.ret) have.conflict = true;
    if (have.params != sig.params) have.params_known = false;
  }

  Dim lookup_var(const std::string& name) const {
    auto it = vars.find(name);
    if (it == vars.end()) return Dim::kNone;
    return it->second == Dim::kShadow ? Dim::kNone : it->second;
  }
};

struct FileInfo {
  SourceFile src;
  std::string code;  ///< joined code_lines, '\n'-separated.
  std::map<std::string, Dim> locals;  ///< Includes kShadow entries.
  bool exempt = false;  ///< util/types.h: the contract's own home.
  bool report_path = false;  ///< Sanctioned narrowing/report files.

  void merge_local(const std::string& name, Dim d) {
    auto it = locals.find(name);
    if (it == locals.end())
      locals.emplace(name, d);
    else if (it->second != d)
      it->second = Dim::kShadow;
  }

  /// Local declarations win; only then the whole-program map.
  Dim resolve(const Registry& reg, const std::string& name,
              bool member) const {
    if (!member) {
      auto it = locals.find(name);
      if (it != locals.end())
        return it->second == Dim::kShadow ? Dim::kNone : it->second;
    }
    return reg.lookup_var(name);
  }
};

bool path_contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Pass A: declaration scan.

/// Parses one parameter list starting at the '(' and registers parameter
/// names into `file`, returning the ordered parameter dimensions.
std::vector<Dim> parse_params(std::string_view text, std::size_t open,
                              std::size_t close, FileInfo* file,
                              std::vector<Finding>* findings) {
  std::vector<Dim> dims;
  std::size_t start = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = i < close ? text[i] : ',';
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (!(c == ',' && depth <= 0) && i < close) continue;
    std::string_view piece = text.substr(start, i - start);
    start = i + 1;
    if (piece.empty()) continue;
    // Tokenize the piece: find the declared dimension and the name.
    Dim dim = Dim::kNone;
    bool raw = false;
    std::string raw_word;
    std::string name;
    std::size_t name_pos = 0;
    for (std::size_t j = 0; j < piece.size();) {
      if (!ident_char(piece[j]) ||
          (j > 0 && ident_char(piece[j - 1]))) {
        if (piece[j] == '=') break;  // default argument: name is settled
        ++j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(piece[j])) != 0) {
        std::size_t e2 = j;
        while (e2 < piece.size() && ident_char(piece[e2])) ++e2;
        j = e2;
        continue;
      }
      std::size_t e = j;
      std::string w = read_ident(piece, j, &e);
      Dim d = alias_dim(w);
      if (d != Dim::kNone) {
        dim = d;
      } else if (raw_type_word(w)) {
        raw = true;
        if (raw_word.empty() || alias_capable_type(w)) raw_word = w;
      } else if (w != "its" && w != "std" && !keyword_operand(w)) {
        name = w;
        name_pos = j;
      }
      j = e;
    }
    dims.push_back(dim);
    if (name.empty()) continue;
    if (dim != Dim::kNone) {
      file->merge_local(name, dim);
    } else if (raw) {
      file->merge_local(name, count_vocab(name) ? Dim::kCount : Dim::kShadow);
      const Dim claimed = vocab_dim(name);
      if (claimed != Dim::kNone && alias_capable_type(raw_word) &&
          !file->exempt &&
          !(raw_word == "double" &&
            (!time_like(claimed) || rate_name(name)))) {
        const std::size_t off =
            static_cast<std::size_t>(piece.data() - text.data()) + name_pos;
        findings->push_back(
            {file->src.path, line_at(text, off), Rule::kUnitsAliasDecl,
             "parameter '" + name + "' is declared " + raw_word +
                 " but its vocabulary names " +
                 std::string(dim_name(claimed)) +
                 " — use the its:: alias from util/types.h"});
      }
    }
  }
  return dims;
}

/// Handles a declaration introduced by an alias or raw type word at
/// text[word_end...].  Registers variables/functions; emits
/// units-alias-decl for vocabulary-typed raw declarations.
void handle_decl(std::string_view text, std::size_t word_end, Dim dim,
                 const std::string& type_word, FileInfo* file, Registry* reg,
                 std::vector<Finding>* findings, std::size_t* resume) {
  std::size_t j = skip_ws(text, word_end);
  // Swallow cv-qualifiers, declarators and multi-word raw types
  // ("unsigned long long", "const Duration&").
  std::string raw_word = type_word;
  for (;;) {
    if (j < text.size() && (text[j] == '&' || text[j] == '*')) {
      ++j;
      j = skip_ws(text, j);
      continue;
    }
    std::size_t e = j;
    std::string w = read_ident(text, j, &e);
    if (w.empty()) break;
    if (w == "const" || w == "constexpr" || w == "inline" || w == "static" ||
        w == "volatile" || w == "mutable") {
      j = skip_ws(text, e);
      continue;
    }
    if (dim == Dim::kNone && raw_type_word(w)) {
      if (alias_capable_type(w)) raw_word = w;
      j = skip_ws(text, e);
      continue;
    }
    break;
  }
  std::size_t e = j;
  std::string name = read_ident(text, j, &e);
  if (name.empty() || keyword_operand(name) || raw_type_word(name) ||
      alias_dim(name) != Dim::kNone || name == "its" || name == "std")
    return;
  if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) return;
  std::size_t name_pos = j;
  // Qualified function names: Duration Simulator::total() — keep the last
  // component.
  std::size_t k = skip_ws(text, e);
  while (k + 1 < text.size() && text[k] == ':' && text[k + 1] == ':') {
    j = skip_ws(text, k + 2);
    name = read_ident(text, j, &e);
    if (name.empty()) return;
    name_pos = j;
    k = skip_ws(text, e);
  }
  if (k >= text.size()) return;
  if (text[k] == '(') {
    const std::size_t close = skip_balanced(text, k, '(', ')');
    if (close >= text.size()) return;
    // A definition/declaration, not a call: the list either declares
    // typed parameters or is empty, and we only register when the token
    // before the type word looked like a declaration context — which the
    // caller guarantees by only invoking handle_decl on type tokens.
    FnSig sig;
    sig.ret = dim;
    sig.params = parse_params(text, k, close - 1, file, findings);
    sig.params_known = true;
    reg->merge_fn(name, sig);
    *resume = close;
    return;
  }
  const bool decl_end =
      text[k] == '=' || text[k] == ';' || text[k] == ',' || text[k] == ')' ||
      text[k] == '{' ||
      (text[k] == ':' && (k + 1 >= text.size() || text[k + 1] != ':'));
  if (!decl_end) return;
  if (dim != Dim::kNone) {
    file->merge_local(name, dim);
    reg->merge_var(name, dim);
    return;
  }
  // Raw-typed variable: shadow locally, poison/seed globally, and check
  // the vocabulary against the alias catalogue.
  const Dim counted = count_vocab(name) ? Dim::kCount : Dim::kShadow;
  file->merge_local(name, counted);
  reg->merge_var(name, counted);
  const Dim claimed = vocab_dim(name);
  if (claimed == Dim::kNone || file->exempt) return;
  if (!alias_capable_type(raw_word)) return;
  if (raw_word == "double" && (!time_like(claimed) || rate_name(name)))
    return;
  findings->push_back(
      {file->src.path, line_at(text, name_pos), Rule::kUnitsAliasDecl,
       "'" + name + "' is declared " + raw_word +
           " but its vocabulary names " + std::string(dim_name(claimed)) +
           " — use the its:: alias from util/types.h (or keep it raw with a "
           "reasoned suppression)"});
}

void scan_decls(FileInfo* file, Registry* reg,
                std::vector<Finding>* findings) {
  const std::string_view text = file->code;
  for (std::size_t i = 0; i < text.size();) {
    if (!ident_char(text[i]) || (i > 0 && ident_char(text[i - 1]))) {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      while (i < text.size() && ident_char(text[i])) ++i;
      continue;
    }
    std::size_t e = i;
    const std::string w = read_ident(text, i, &e);
    std::size_t resume = e;
    const Dim d = alias_dim(w);
    if (d != Dim::kNone) {
      // Skip non-declaration contexts: template args / casts end the
      // token with '>', ')' or '('; `using X = its::Duration;` ends ';'.
      handle_decl(text, e, d, w, file, reg, findings, &resume);
    } else if (raw_type_word(w) && w != "bool" && w != "char" &&
               w != "uint8_t" && w != "int8_t") {
      handle_decl(text, e, Dim::kNone, w, file, reg, findings, &resume);
    } else if (w == "void") {
      // Dimension-free functions still contribute call edges when their
      // parameters are dimensioned: void advance(Process&, Duration).
      handle_decl(text, e, Dim::kNone, w, file, reg, findings, &resume);
    }
    i = resume > e ? resume : e;
  }
}

// ---------------------------------------------------------------------------
// Pass B: operands.

struct Operand {
  Dim dim = Dim::kNone;
  bool known = false;
  bool literal = false;       ///< Plain (unsuffixed-by-units) literal.
  unsigned long long value = 0;
  bool decimal = false;       ///< Literal written in base 10.
  std::string name;
  std::size_t end = 0;        ///< One past the operand in the text.
};

/// Parses a numeric literal at `i` (which must be a digit).
Operand read_literal(std::string_view text, std::size_t i) {
  Operand op;
  op.literal = true;
  std::size_t j = i;
  bool hex = false;
  if (text[j] == '0' && j + 1 < text.size() &&
      (text[j + 1] == 'x' || text[j + 1] == 'X')) {
    hex = true;
    j += 2;
  }
  unsigned long long v = 0;
  bool overflow = false;
  std::string suffix;
  for (; j < text.size(); ++j) {
    const char c = text[j];
    if (c == '\'') continue;
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (hex && c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else if (hex && c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
    if (digit < 0) {
      if (ident_char(c)) {
        suffix += c;
        continue;
      }
      if (c == '.') {  // floating literal: dimensionless here
        while (j < text.size() && (ident_char(text[j]) || text[j] == '.'))
          ++j;
        op.literal = false;
        break;
      }
      break;
    }
    if (!suffix.empty()) break;
    const unsigned long long base = hex ? 16 : 10;
    if (v > (~0ull - static_cast<unsigned long long>(digit)) / base)
      overflow = true;
    else
      v = v * base + static_cast<unsigned long long>(digit);
  }
  op.end = j;
  op.value = overflow ? ~0ull : v;
  op.decimal = !hex;
  // Units-suffixed literals carry their dimension.
  if (suffix == "_ns" || suffix == "_us" || suffix == "_ms" ||
      suffix == "_s") {
    op.dim = Dim::kDur;
    op.known = true;
    op.literal = false;
  } else if (suffix == "_KiB" || suffix == "_MiB" || suffix == "_GiB") {
    op.dim = Dim::kBytes;
    op.known = true;
    op.literal = false;
  }
  return op;
}

/// Reads the operand beginning at/after `i`: a literal, or an identifier
/// chain (a.b->c, ns::x, f(...).g) resolved against the maps.
Operand read_operand_right(std::string_view text, std::size_t i,
                           const FileInfo& file, const Registry& reg) {
  Operand op;
  i = skip_ws(text, i);
  op.end = i;
  if (i >= text.size()) return op;
  if (std::isdigit(static_cast<unsigned char>(text[i])) != 0)
    return read_literal(text, i);
  if (text[i] == '(') {  // parenthesized / cast: unresolvable, but consume
    op.end = skip_balanced(text, i, '(', ')');
    return op;
  }
  if (text[i] == '~' || text[i] == '!' || text[i] == '-' || text[i] == '+' ||
      text[i] == '*' || text[i] == '&') {
    Operand inner = read_operand_right(text, i + 1, file, reg);
    inner.known = false;  // unary-op result: keep literal value for masks
    inner.dim = Dim::kNone;
    return inner;
  }
  if (!ident_char(text[i])) return op;
  std::size_t e = i;
  std::string name = read_ident(text, i, &e);
  bool member = false;
  op.end = e;
  for (;;) {
    std::size_t k = skip_ws(text, e);
    if (k + 1 < text.size() && text[k] == ':' && text[k + 1] == ':') {
      std::size_t j = skip_ws(text, k + 2);
      if (j >= text.size() || !ident_char(text[j])) break;
      name = read_ident(text, j, &e);
      op.end = e;
      continue;
    }
    if (k < text.size() && text[k] == '.' && k + 1 < text.size() &&
        ident_char(text[k + 1])) {
      member = true;
      name = read_ident(text, k + 1, &e);
      op.end = e;
      continue;
    }
    if (k + 2 < text.size() && text[k] == '-' && text[k + 1] == '>' &&
        ident_char(text[k + 2])) {
      member = true;
      name = read_ident(text, k + 2, &e);
      op.end = e;
      continue;
    }
    if (k < text.size() && text[k] == '(') {
      const std::size_t close = skip_balanced(text, k, '(', ')');
      std::size_t after = skip_ws(text, close);
      const bool chained =
          (after < text.size() && text[after] == '.') ||
          (after + 1 < text.size() && text[after] == '-' &&
           text[after + 1] == '>');
      if (chained) {  // mid-chain call: keep walking
        e = close;
        op.end = close;
        continue;
      }
      op.end = close;
      op.name = name;
      if (keyword_operand(name) || raw_type_word(name) ||
          alias_dim(name) != Dim::kNone)
        return op;
      auto it = reg.fns.find(name);
      if (it != reg.fns.end() && !it->second.conflict &&
          dimensioned(it->second.ret)) {
        op.dim = it->second.ret;
        op.known = true;
      }
      return op;
    }
    if (k < text.size() && text[k] == '[') {
      op.end = skip_balanced(text, k, '[', ']');
      return op;  // element type unknowable here
    }
    break;
  }
  op.name = name;
  if (keyword_operand(name) || raw_type_word(name) ||
      alias_dim(name) != Dim::kNone || name == "its" || name == "std")
    return op;
  const Dim d = file.resolve(reg, name, member);
  if (d != Dim::kNone && d != Dim::kShadow) {
    op.dim = d;
    op.known = d != Dim::kCount ? dimensioned(d) : true;
    if (d == Dim::kCount) op.known = true;
  }
  return op;
}

/// Reads the operand ending just before `op_pos` (scanning backwards).
Operand read_operand_left(std::string_view text, std::size_t op_pos,
                          const FileInfo& file, const Registry& reg) {
  Operand op;
  std::size_t k = op_pos;
  while (k > 0 &&
         std::isspace(static_cast<unsigned char>(text[k - 1])) != 0)
    --k;
  if (k == 0) return op;
  const char c = text[k - 1];
  if (!ident_char(c)) return op;  // ')', ']' etc.: unresolvable
  std::size_t start = k;
  while (start > 0 && ident_char(text[start - 1])) --start;
  if (std::isdigit(static_cast<unsigned char>(text[start])) != 0)
    return read_literal(text, start);
  std::string name(text.substr(start, k - start));
  bool member = false;
  if (start >= 1 && text[start - 1] == '.') {
    // Distinguish `a.b` from a floating literal `1.5`; the latter starts
    // with a digit further left, which read_literal above already caught.
    member = start >= 2 && ident_char(text[start - 2]);
    if (!member) return op;  // `.5`-style literal fragment
  } else if (start >= 2 && text[start - 2] == '-' && text[start - 1] == '>') {
    member = true;
  }
  op.name = name;
  if (keyword_operand(name) || raw_type_word(name) ||
      alias_dim(name) != Dim::kNone || name == "its" || name == "std")
    return op;
  const Dim d = file.resolve(reg, name, member);
  if (d != Dim::kNone && d != Dim::kShadow) {
    op.dim = d;
    op.known = true;
  }
  return op;
}

// ---------------------------------------------------------------------------
// Pass B: the checks.

struct Checker {
  const FileInfo& file;
  const Registry& reg;
  std::vector<Finding>* findings;
  std::string_view text;

  void add(std::size_t pos, Rule rule, std::string msg) {
    findings->push_back({file.src.path, line_at(text, pos), rule,
                         std::move(msg)});
  }

  static bool cmp_op(std::string_view op) {
    return op == "<" || op == ">" || op == "<=" || op == ">=" || op == "==" ||
           op == "!=";
  }

  /// Mixed-dimension / overflow / raw-literal checks for L <op> R.
  void check_binary(const Operand& l, const Operand& r, std::string_view op,
                    std::size_t pos) {
    // Raw time-scale literal next to a time quantity.  Division is unit
    // conversion (ns / 1000 for a µs report column), not a magnitude.
    auto raw_literal = [&](const Operand& dim_side, const Operand& lit) {
      if (op == "/") return;
      if (dim_side.known && time_like(dim_side.dim) && lit.literal &&
          lit.decimal && lit.value >= 1000 && lit.value % 1000 == 0)
        add(pos, Rule::kUnitsRawLiteral,
            "unsuffixed time-scale literal " + std::to_string(lit.value) +
                " next to '" + dim_side.name +
                "' — write it as _us/_ms/_s (util/types.h)");
    };
    raw_literal(l, r);
    raw_literal(r, l);
    if (!l.known || !r.known) return;
    if (l.dim == Dim::kCount || r.dim == Dim::kCount) {
      if (op == "*" && (l.dim == Dim::kDur || r.dim == Dim::kDur))
        add(pos, Rule::kUnitsOverflow,
            "raw Duration * count product ('" + l.name + "' * '" + r.name +
                "') can wrap at full-scale trace lengths — use checked_mul, "
                "saturating_mul or wide_mul (util/types.h)");
      return;
    }
    if (time_like(l.dim) != time_like(r.dim)) {
      add(pos, Rule::kUnitsMixedArith,
          "'" + l.name + "' (" + std::string(dim_name(l.dim)) + ") " +
              std::string(op) + " '" + r.name + "' (" +
              std::string(dim_name(r.dim)) +
              ") mixes time with space — convert explicitly");
      return;
    }
    if (time_like(l.dim)) {
      if (op == "*") {
        if (l.dim == Dim::kDur && r.dim == Dim::kDur)
          add(pos, Rule::kUnitsOverflow,
              "raw Duration * Duration product ('" + l.name + "' * '" +
                  r.name +
                  "') — use checked_mul, saturating_mul or wide_mul "
                  "(util/types.h)");
        else
          add(pos, Rule::kUnitsMixedArith,
              "multiplying a SimTime ('" +
                  (l.dim == Dim::kTime ? l.name : r.name) +
                  "') is dimensionally meaningless — points in time do not "
                  "scale");
        return;
      }
      if (op == "+" && l.dim == Dim::kTime && r.dim == Dim::kTime) {
        add(pos, Rule::kUnitsMixedArith,
            "'" + l.name + "' + '" + r.name +
                "' adds two SimTime points — the algebra is SimTime + "
                "Duration -> SimTime (util/types.h)");
        return;
      }
      if (op == "-" && l.dim == Dim::kDur && r.dim == Dim::kTime) {
        add(pos, Rule::kUnitsMixedArith,
            "'" + l.name + "' (Duration) - '" + r.name +
                "' (SimTime) — subtracting a point from a distance");
        return;
      }
      if (cmp_op(op) && l.dim != r.dim) {
        add(pos, Rule::kUnitsMixedArith,
            "comparing '" + l.name + "' (" + std::string(dim_name(l.dim)) +
                ") with '" + r.name + "' (" + std::string(dim_name(r.dim)) +
                ") — a point in time is not a duration");
        return;
      }
      return;
    }
    // Space group: page numbers never mix with byte-scaled quantities
    // without an explicit shift.
    if ((l.dim == Dim::kPage) != (r.dim == Dim::kPage) &&
        (op == "+" || op == "-" || cmp_op(op))) {
      add(pos, Rule::kUnitsMixedArith,
          "'" + l.name + "' (" + std::string(dim_name(l.dim)) + ") " +
              std::string(op) + " '" + r.name + "' (" +
              std::string(dim_name(r.dim)) +
              ") mixes page numbers with byte-scaled values — use "
              "vpn_of/page_base");
    }
  }

  /// Dimension of a +/- expression chain starting at `i`; unresolvable
  /// sub-terms poison the result.
  Operand eval_rhs(std::size_t i, std::size_t* end) {
    Operand acc = read_operand_right(text, i, file, reg);
    std::size_t k = acc.end;
    for (;;) {
      k = skip_ws(text, k);
      if (k >= text.size()) break;
      const char c = text[k];
      if (c == ';' || c == ',' || c == ')' || c == '}' || c == ']') break;
      if ((c == '+' || c == '-') && (k + 1 >= text.size() ||
                                     (text[k + 1] != '=' && text[k + 1] != c &&
                                      text[k + 1] != '>'))) {
        Operand rhs = read_operand_right(text, k + 1, file, reg);
        if (rhs.end <= k + 1) {  // no operand: bail
          acc.known = false;
          break;
        }
        if (acc.known && rhs.known) {
          acc.dim = combine(acc.dim, rhs.dim, c);
          acc.known = dimensioned(acc.dim);
        } else {
          acc.known = false;
        }
        acc.name += std::string(1, c) + rhs.name;
        k = rhs.end;
        continue;
      }
      // Any other operator ( *, /, <<, ?:, ...) leaves the chain.
      acc.known = false;
      break;
    }
    *end = k;
    return acc;
  }

  static Dim combine(Dim a, Dim b, char op) {
    if (op == '-') {
      if (a == Dim::kTime && b == Dim::kTime) return Dim::kDur;
      if (a == Dim::kTime && b == Dim::kDur) return Dim::kTime;
      if (a == Dim::kDur && b == Dim::kDur) return Dim::kDur;
      if (a == Dim::kAddr && b == Dim::kAddr) return Dim::kBytes;
      if (a == Dim::kAddr && b == Dim::kBytes) return Dim::kAddr;
      if (a == Dim::kBytes && b == Dim::kBytes) return Dim::kBytes;
      return Dim::kNone;
    }
    if ((a == Dim::kTime && b == Dim::kDur) ||
        (a == Dim::kDur && b == Dim::kTime))
      return Dim::kTime;
    if (a == Dim::kDur && b == Dim::kDur) return Dim::kDur;
    if ((a == Dim::kAddr && b == Dim::kBytes) ||
        (a == Dim::kBytes && b == Dim::kAddr))
      return Dim::kAddr;
    if (a == Dim::kBytes && b == Dim::kBytes) return Dim::kBytes;
    return Dim::kNone;
  }

  void check_assign(const Operand& l, std::string_view op, std::size_t pos,
                    std::size_t rhs_at) {
    std::size_t end = rhs_at;
    Operand rhs = eval_rhs(rhs_at, &end);
    // Raw time-scale literals anywhere in a time-dimensioned statement.
    if (l.known && time_like(l.dim)) {
      scan_raw_literals(rhs_at, l.name);
    }
    if (!l.known || !rhs.known) return;
    if (l.dim == Dim::kCount || rhs.dim == Dim::kCount) return;
    if (op == "=") {
      if (time_like(l.dim) != time_like(rhs.dim)) {
        add(pos, Rule::kUnitsMixedArith,
            "assigning " + std::string(dim_name(rhs.dim)) + " ('" + rhs.name +
                "') to '" + l.name + "' (" + std::string(dim_name(l.dim)) +
                ") mixes time with space");
      } else if (time_like(l.dim) && l.dim != rhs.dim) {
        add(pos, Rule::kUnitsMixedArith,
            "assigning " + std::string(dim_name(rhs.dim)) + " ('" + rhs.name +
                "') to '" + l.name + "' (" + std::string(dim_name(l.dim)) +
                ") — durations and points in time are distinct "
                "(util/types.h)");
      } else if ((l.dim == Dim::kPage) != (rhs.dim == Dim::kPage)) {
        add(pos, Rule::kUnitsMixedArith,
            "assigning " + std::string(dim_name(rhs.dim)) + " ('" + rhs.name +
                "') to '" + l.name + "' (" + std::string(dim_name(l.dim)) +
                ") — page numbers need an explicit vpn_of/page_base");
      }
      return;
    }
    // += / -= accumulate: the RHS must be a distance, never a point.
    if (time_like(l.dim) != time_like(rhs.dim)) {
      add(pos, Rule::kUnitsMixedArith,
          "'" + l.name + "' " + std::string(op) + " " + rhs.name +
              " mixes time with space");
      return;
    }
    if (time_like(l.dim) && rhs.dim == Dim::kTime) {
      add(pos, Rule::kUnitsMixedArith,
          "'" + l.name + "' " + std::string(op) + " '" + rhs.name +
              "' accumulates a SimTime point — accumulate Durations "
              "(end - start) instead");
      return;
    }
    if ((l.dim == Dim::kPage) != (rhs.dim == Dim::kPage)) {
      add(pos, Rule::kUnitsMixedArith,
          "'" + l.name + "' " + std::string(op) + " '" + rhs.name +
              "' mixes page numbers with byte-scaled values");
    }
  }

  /// Flags unsuffixed >=1000, %1000==0 decimal literals between `i` and
  /// the end of the statement (time-dimensioned contexts only).
  void scan_raw_literals(std::size_t i, const std::string& lhs_name) {
    for (std::size_t j = i; j < text.size() && text[j] != ';' &&
                            text[j] != '\n';) {
      if (std::isdigit(static_cast<unsigned char>(text[j])) != 0 &&
          (j == 0 || !ident_char(text[j - 1]))) {
        Operand lit = read_literal(text, j);
        if (lit.literal && lit.decimal && lit.value >= 1000 &&
            lit.value % 1000 == 0)
          add(j, Rule::kUnitsRawLiteral,
              "unsuffixed time-scale literal " + std::to_string(lit.value) +
                  " assigned to '" + lhs_name +
                  "' — write it as _us/_ms/_s (util/types.h)");
        j = lit.end > j ? lit.end : j + 1;
        continue;
      }
      ++j;
    }
  }

  /// units-shift-page: `>>12`, `<<12` (dimensioned/literal base) and
  /// `& 0xfff` masks.
  void check_shift(const Operand& l, std::string_view op, std::size_t pos,
                   std::size_t rhs_at) {
    std::size_t k = skip_ws(text, rhs_at);
    if (k >= text.size()) return;
    bool inverted = false;
    if (text[k] == '~') {
      inverted = true;
      k = skip_ws(text, k + 1);
    }
    if (k >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[k])) == 0)
      return;
    Operand lit = read_literal(text, k);
    if (op == ">>" && !inverted && lit.value == 12) {
      add(pos, Rule::kUnitsShiftPage,
          "manual '>> 12' page shift — use vpn_of/pfn_of or kPageShift "
          "(util/types.h)");
    } else if (op == "<<" && !inverted && lit.value == 12 &&
               (l.literal || (l.known && space_like(l.dim)))) {
      add(pos, Rule::kUnitsShiftPage,
          "manual '<< 12' page scaling — use kPageSize/kPageShift "
          "(util/types.h)");
    } else if (op == "&" && lit.value == 0xfff) {
      add(pos, Rule::kUnitsShiftPage,
          inverted ? "manual '& ~0xfff' page mask — use page_base "
                     "(util/types.h)"
                   : "manual '& 0xfff' offset mask — use kPageOffsetMask "
                     "(util/types.h)");
    }
  }

  /// units-narrow: static_cast<narrow>(time/size) and narrow decls
  /// initialized from a time/size quantity.
  void check_casts() {
    if (file.report_path) return;
    std::size_t at = 0;
    while ((at = text.find("static_cast", at)) != std::string_view::npos) {
      const std::size_t tok = at;
      at += 11;
      if ((tok > 0 && ident_char(text[tok - 1])) ||
          (at < text.size() && ident_char(text[at])))
        continue;
      std::size_t k = skip_ws(text, at);
      if (k >= text.size() || text[k] != '<') continue;
      const std::size_t close_t = skip_balanced(text, k, '<', '>');
      std::string target(text.substr(k + 1, close_t - k - 2));
      bool narrow = false;
      bool floating = false;
      for (std::size_t j = 0; j < target.size();) {
        if (!ident_char(target[j])) {
          ++j;
          continue;
        }
        std::size_t e = j;
        std::string w = read_ident(target, j, &e);
        if (narrow_type_word(w) && w != "unsigned") narrow = true;
        if (w == "unsigned" && target.find("long") == std::string::npos &&
            target.find("64") == std::string::npos)
          narrow = true;
        if (w == "double" || w == "float") floating = true;
        if (alias_dim(w) != Dim::kNone || w == "uint64_t" || w == "int64_t" ||
            w == "size_t") {
          narrow = false;
          floating = false;
          break;
        }
        j = e;
      }
      if (!narrow && !floating) continue;
      std::size_t p = skip_ws(text, close_t);
      if (p >= text.size() || text[p] != '(') continue;
      Operand arg = read_operand_right(text, p + 1, file, reg);
      std::size_t after_arg = skip_ws(text, arg.end);
      if (after_arg >= text.size() || text[after_arg] != ')')
        continue;  // compound expression inside the cast: ratios etc.
      if (!arg.known) continue;
      if (time_like(arg.dim) || arg.dim == Dim::kBytes) {
        add(tok, Rule::kUnitsNarrow,
            std::string(floating ? "promoting '" : "narrowing '") + arg.name +
                "' (" + std::string(dim_name(arg.dim)) + ") to " +
                (floating ? "floating point" : "a 32-bit-or-smaller type") +
                " outside the sanctioned report path (util/types.h keeps "
                "time and sizes in exact 64-bit integers)");
      }
    }
  }

  /// Narrow declarations initialized straight from a dimensioned
  /// identifier: `uint32_t t = deadline;`.
  void check_narrow_decls() {
    if (file.report_path) return;
    const std::string_view kWords[] = {"uint32_t", "int32_t", "uint16_t",
                                       "int16_t", "float", "double"};
    for (std::string_view w : kWords) {
      std::size_t at = 0;
      while ((at = text.find(w, at)) != std::string_view::npos) {
        const std::size_t tok = at;
        at += w.size();
        if ((tok > 0 && ident_char(text[tok - 1])) ||
            (at < text.size() && ident_char(text[at])))
          continue;
        std::size_t j = skip_ws(text, tok + w.size());
        std::size_t e = j;
        std::string name = read_ident(text, j, &e);
        if (name.empty() || keyword_operand(name) || raw_type_word(name))
          continue;
        std::size_t k = skip_ws(text, e);
        if (k >= text.size() || text[k] != '=' ||
            (k + 1 < text.size() && text[k + 1] == '='))
          continue;
        Operand rhs = read_operand_right(text, k + 1, file, reg);
        std::size_t after = skip_ws(text, rhs.end);
        if (after >= text.size() || text[after] != ';') continue;
        if (!rhs.known) continue;
        const bool floating = w == "float" || w == "double";
        if (floating && rate_name(name)) continue;
        if (time_like(rhs.dim) || rhs.dim == Dim::kBytes) {
          add(tok, Rule::kUnitsNarrow,
              "'" + name + "' (" + std::string(w) + ") initialized from '" +
                  rhs.name + "' (" + std::string(dim_name(rhs.dim)) +
                  ") " + (floating ? "promotes it to floating point"
                                   : "narrows it below 64 bits") +
                  " outside the sanctioned report path");
        }
      }
    }
  }

  /// Cross-file call edges: arguments checked against registered
  /// parameter dimensions.
  void check_calls() {
    for (std::size_t i = 0; i < text.size();) {
      if (!ident_char(text[i]) || (i > 0 && ident_char(text[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t e = i;
      const std::string name = read_ident(text, i, &e);
      i = e;
      if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;
      auto it = reg.fns.find(name);
      if (it == reg.fns.end() || !it->second.params_known ||
          it->second.conflict)
        continue;
      const std::size_t open = skip_ws(text, e);
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = skip_balanced(text, open, '(', ')');
      const FnSig& sig = it->second;
      // Walk top-level arguments.
      std::size_t arg_start = open + 1;
      std::size_t arg_index = 0;
      int depth = 0;
      for (std::size_t k = open + 1; k < close && k < text.size(); ++k) {
        const char c = text[k];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        const bool at_end = k + 1 == close;
        if (!(c == ',' && depth <= 0) && !at_end) continue;
        const std::size_t arg_stop = at_end && c != ',' ? k + 1 : k;
        if (arg_index < sig.params.size() &&
            dimensioned(sig.params[arg_index])) {
          Operand arg =
              read_operand_right(text, arg_start, file, reg);
          const std::size_t after = skip_ws(text, arg.end);
          // Only single-operand arguments: composite expressions were
          // already checked by the binary scan.
          if (after >= arg_stop && arg.known &&
              arg.dim != Dim::kCount) {
            const Dim want = sig.params[arg_index];
            const bool bad =
                time_like(want) != time_like(arg.dim) ||
                (time_like(want) && want != arg.dim) ||
                ((want == Dim::kPage) != (arg.dim == Dim::kPage));
            if (bad)
              add(arg_start, Rule::kUnitsMixedArith,
                  "argument " + std::to_string(arg_index + 1) + " of '" +
                      name + "' expects " + std::string(dim_name(want)) +
                      " but '" + arg.name + "' is " +
                      std::string(dim_name(arg.dim)));
          }
        }
        ++arg_index;
        arg_start = k + 1;
      }
      i = open + 1;
    }
  }

  /// The operator walk: binary mixes, assignments, shifts, masks.
  void check_operators() {
    const std::string_view ops = "+-*/<>=!&%";
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (ops.find(c) == std::string_view::npos) continue;
      const char c2 = i + 1 < text.size() ? text[i + 1] : '\0';
      const char c0 = i > 0 ? text[i - 1] : '\0';
      // Skip ->, ::, ++, --, &&, ||, comments already blanked.
      if (c == '-' && c2 == '>') { ++i; continue; }
      if ((c == '+' && c2 == '+') || (c == '-' && c2 == '-')) { ++i; continue; }
      if (c == '&' && c2 == '&') { ++i; continue; }
      if (c == '&' && c0 == '&') continue;
      if (c == '=' && (c0 == '<' || c0 == '>' || c0 == '!' || c0 == '=' ||
                       c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' ||
                       c0 == '%' || c0 == '&' || c0 == '|' || c0 == '^'))
        continue;
      std::string_view op;
      std::size_t rhs_at = i + 1;
      if ((c == '<' && c2 == '<') || (c == '>' && c2 == '>')) {
        if (i + 2 < text.size() && text[i + 2] == '=') { i += 2; continue; }
        op = c == '<' ? "<<" : ">>";
        rhs_at = i + 2;
      } else if ((c == '<' || c == '>' || c == '=' || c == '!') &&
                 c2 == '=') {
        op = text.substr(i, 2);
        rhs_at = i + 2;
      } else if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
                  c == '&') &&
                 c2 == '=') {
        op = text.substr(i, 2);
        rhs_at = i + 2;
      } else {
        if (c == '!') continue;
        op = text.substr(i, 1);
      }
      Operand l = read_operand_left(text, i, file, reg);
      if (op == "<<" || op == ">>" || op == "&") {
        if (op != "&" || c2 != '=') check_shift(l, op, i, rhs_at);
        i = rhs_at - 1;
        continue;
      }
      if (op == "=" || op == "+=" || op == "-=") {
        check_assign(l, op, i, rhs_at);
        i = rhs_at - 1;
        continue;
      }
      if (op == "*=" || op == "/=" || op == "%=" || op == "%") {
        i = rhs_at - 1;
        continue;
      }
      Operand r = read_operand_right(text, rhs_at, file, reg);
      check_binary(l, r, op, i);
      i = rhs_at - 1;
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Entry points.

std::vector<Finding> scan_units_files(const std::vector<SourceFile>& files) {
  Registry reg;
  std::vector<FileInfo> infos;
  infos.reserve(files.size());
  for (const SourceFile& f : files) {
    FileInfo fi;
    fi.src = f;
    fi.code = joined_code(f);
    fi.exempt = path_contains(f.path, "util/types.h");
    fi.report_path = path_contains(f.path, "report") ||
                     path_contains(f.path, "stats") ||
                     path_contains(f.path, "table") ||
                     path_contains(f.path, "trace_json") ||
                     path_contains(f.path, "quantile") ||
                     path_contains(f.path, "csv");
    infos.push_back(std::move(fi));
  }
  // Pass A: declarations (alias-decl findings fall out of the walk).
  std::vector<std::vector<Finding>> per_file(infos.size());
  for (std::size_t i = 0; i < infos.size(); ++i)
    scan_decls(&infos[i], &reg, &per_file[i]);
  // Pass B: expressions, casts, calls.
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].exempt) {
      per_file[i].clear();
      continue;
    }
    Checker ch{infos[i], reg, &per_file[i], infos[i].code};
    ch.check_operators();
    ch.check_casts();
    ch.check_narrow_decls();
    ch.check_calls();
  }
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < infos.size(); ++i) {
    // Deduplicate per (rule, line): several detectors can anchor at the
    // same expression.
    std::vector<Finding>& group = per_file[i];
    std::stable_sort(group.begin(), group.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.line != b.line) return a.line < b.line;
                       return a.rule < b.rule;
                     });
    group.erase(std::unique(group.begin(), group.end(),
                            [](const Finding& a, const Finding& b) {
                              return a.line == b.line && a.rule == b.rule;
                            }),
                group.end());
    std::vector<Finding> kept =
        filter_suppressed(infos[i].src, std::move(group));
    findings.insert(findings.end(), std::make_move_iterator(kept.begin()),
                    std::make_move_iterator(kept.end()));
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

UnitsOptions units_options_for_root(const std::string& root) {
  UnitsOptions o;
  o.root = root;
  o.src_dir = (fs::path(root) / "src").generic_string();
  return o;
}

std::vector<Finding> scan_units(const UnitsOptions& opts,
                                std::vector<std::string>* errors) {
  std::vector<SourceFile> files;
  for (const std::string& p : collect_tree(opts.src_dir, errors)) {
    SourceFile f;
    std::string err;
    if (!SourceFile::load(p, &f, &err)) {
      errors->push_back(err);
      continue;
    }
    f.path = fs::path(p).lexically_relative(opts.root).generic_string();
    files.push_back(std::move(f));
  }
  return scan_units_files(files);
}

}  // namespace its::lint
