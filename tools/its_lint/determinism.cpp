// Determinism rules: the token-level checks that keep wall clocks, entropy
// and hash order out of the simulation and accounting paths.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "lint.h"

namespace its::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool path_contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

/// Files allowed to own entropy: the seeded PCG32 wrapper and the fault
/// injector (whose whole job is drawing from seeded distributions).
bool rand_exempt(const std::string& path) {
  return path_contains(path, "util/rng.") || path_contains(path, "fault/");
}

bool stats_exempt(const std::string& path) {
  return path_contains(path, "util/stats.");
}

/// Joined view over code lines with offset→line translation.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;  ///< Offset of each line in text.

  explicit JoinedCode(const SourceFile& f) {
    for (const std::string& l : f.code_lines) {
      line_start.push_back(text.size());
      text += l;
      text += '\n';
    }
  }

  std::size_t line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());  // 1-based
  }
};

/// Finds `word` as a whole identifier starting at or after `from`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  std::size_t at = from;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    bool left_ok = at == 0 || !ident_char(text[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return at;
    at = end;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

std::string read_ident(std::string_view text, std::size_t i,
                       std::size_t* end = nullptr) {
  std::size_t j = i;
  while (j < text.size() && ident_char(text[j])) ++j;
  if (end != nullptr) *end = j;
  return std::string(text.substr(i, j - i));
}

/// Offset of the bracket matching the `<` at `open` (-1 on failure).
std::size_t match_angle(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>' && --depth == 0) return i;
    if (text[i] == ';') break;  // statement ended: not a template
  }
  return std::string_view::npos;
}

std::size_t match_paren(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::vector<std::string> idents_in(std::string_view text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < text.size();) {
    if (ident_char(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t end = i;
      out.push_back(read_ident(text, i, &end));
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

// -- det-rand ---------------------------------------------------------------

void scan_rand(const SourceFile& f, const JoinedCode& j,
               std::vector<Finding>* out) {
  if (rand_exempt(f.path)) return;
  for (std::string_view banned : {"rand", "srand", "rand_r", "random",
                                  "random_device", "drand48", "lrand48"}) {
    std::size_t at = 0;
    while ((at = find_word(j.text, banned, at)) != std::string_view::npos) {
      // `random` headers/namespaces aside, require call- or decl-like use.
      std::size_t after = skip_ws(j.text, at + banned.size());
      bool call_like = after < j.text.size() &&
                       (j.text[after] == '(' || banned == "random_device");
      if (call_like) {
        out->push_back({f.path, j.line_of(at), Rule::kDetRand,
                        "'" + std::string(banned) +
                            "' is not seed-reproducible; draw from "
                            "util::Rng (PCG32) instead"});
      }
      at += banned.size();
    }
  }
  for (std::string_view mt : {"mt19937", "mt19937_64"}) {
    std::size_t at = 0;
    while ((at = find_word(j.text, mt, at)) != std::string_view::npos) {
      std::size_t i = skip_ws(j.text, at + mt.size());
      std::size_t line = j.line_of(at);
      at += mt.size();
      if (i >= j.text.size()) break;
      // A declaration: `mt19937 name;` / `name{};` is unseeded.  Any
      // parenthesised/braced argument counts as explicit seeding.
      if (!ident_char(j.text[i])) continue;  // type mention, not a decl
      std::size_t end = i;
      read_ident(j.text, i, &end);
      std::size_t nxt = skip_ws(j.text, end);
      bool unseeded = false;
      if (nxt < j.text.size() && j.text[nxt] == ';') unseeded = true;
      if (nxt < j.text.size() && j.text[nxt] == '{' &&
          j.text[skip_ws(j.text, nxt + 1)] == '}')
        unseeded = true;
      if (unseeded)
        out->push_back({f.path, line, Rule::kDetRand,
                        "unseeded " + std::string(mt) +
                            " falls back to an implementation-defined "
                            "default seed; seed it or use util::Rng"});
    }
  }
}

// -- det-clock --------------------------------------------------------------

void scan_clock(const SourceFile& f, const JoinedCode& j,
                std::vector<Finding>* out) {
  for (std::string_view banned :
       {"system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "timespec_get"}) {
    std::size_t at = 0;
    while ((at = find_word(j.text, banned, at)) != std::string_view::npos) {
      out->push_back({f.path, j.line_of(at), Rule::kDetClock,
                      "'" + std::string(banned) +
                          "' reads the host clock; simulation time "
                          "(its::SimTime) is the only clock here"});
      at += banned.size();
    }
  }
}

// -- det-unordered-iter -----------------------------------------------------

/// Names declared (or bound as parameters) with an unordered container
/// type anywhere in the file.
std::vector<std::string> unordered_names(const JoinedCode& j) {
  std::vector<std::string> names;
  for (std::string_view kind : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
    std::size_t at = 0;
    while ((at = find_word(j.text, kind, at)) != std::string_view::npos) {
      std::size_t open = skip_ws(j.text, at + kind.size());
      at += kind.size();
      if (open >= j.text.size() || j.text[open] != '<') continue;
      std::size_t close = match_angle(j.text, open);
      if (close == std::string_view::npos) continue;
      std::size_t i = skip_ws(j.text, close + 1);
      while (i < j.text.size() && (j.text[i] == '&' || j.text[i] == '*'))
        i = skip_ws(j.text, i + 1);
      if (i >= j.text.size() || !ident_char(j.text[i])) continue;
      std::size_t end = i;
      std::string name = read_ident(j.text, i, &end);
      if (name.empty()) continue;
      std::size_t nxt = skip_ws(j.text, end);
      if (nxt < j.text.size() && j.text[nxt] == '(') continue;  // function
      names.push_back(std::move(name));
    }
  }
  return names;
}

void scan_unordered_iter(const SourceFile& f, const JoinedCode& j,
                         std::vector<Finding>* out) {
  // Scope: only files on the event/metrics path — hash order is fine in
  // pure lookup structures that never feed an ordered output.
  bool in_scope = false;
  for (std::string_view marker : {"EventTrace", "SimMetrics"})
    if (find_word(j.text, marker, 0) != std::string_view::npos)
      in_scope = true;
  if (!in_scope) return;

  std::vector<std::string> names = unordered_names(j);
  if (names.empty()) return;
  auto is_unordered = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };

  std::size_t at = 0;
  while ((at = find_word(j.text, "for", at)) != std::string_view::npos) {
    std::size_t open = skip_ws(j.text, at + 3);
    std::size_t line = j.line_of(at);
    at += 3;
    if (open >= j.text.size() || j.text[open] != '(') continue;
    std::size_t close = match_paren(j.text, open);
    if (close == std::string_view::npos) continue;
    std::string_view header =
        std::string_view(j.text).substr(open + 1, close - open - 1);
    // Range-for: the expression right of the first top-level ':' (skip ::).
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      char c = header[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if (i + 1 < header.size() && header[i + 1] == ':') {
          ++i;
          continue;
        }
        colon = i;
        break;
      }
    }
    std::vector<std::string> range_idents;
    if (colon != std::string_view::npos)
      range_idents = idents_in(header.substr(colon + 1));
    else if (header.find(".begin") != std::string_view::npos ||
             header.find(".cbegin") != std::string_view::npos)
      range_idents = idents_in(header);  // classic iterator loop
    for (const std::string& n : range_idents) {
      if (is_unordered(n)) {
        out->push_back(
            {f.path, line, Rule::kDetUnorderedIter,
             "iterating '" + n +
                 "' visits hash order, which differs across standard "
                 "libraries; copy to a sorted container first"});
        break;
      }
    }
  }
}

// -- det-ptr-key ------------------------------------------------------------

void scan_ptr_key(const SourceFile& f, const JoinedCode& j,
                  std::vector<Finding>* out) {
  for (std::string_view kind : {"map", "set", "multimap", "multiset"}) {
    std::size_t at = 0;
    while ((at = find_word(j.text, kind, at)) != std::string_view::npos) {
      std::size_t open = skip_ws(j.text, at + kind.size());
      std::size_t line = j.line_of(at);
      at += kind.size();
      if (open >= j.text.size() || j.text[open] != '<') continue;
      std::size_t close = match_angle(j.text, open);
      if (close == std::string_view::npos) continue;
      // First template argument: up to the first top-level comma.
      std::string_view args =
          std::string_view(j.text).substr(open + 1, close - open - 1);
      int depth = 0;
      std::size_t key_end = args.size();
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == '<' || args[i] == '(') ++depth;
        if (args[i] == '>' || args[i] == ')') --depth;
        if (args[i] == ',' && depth == 0) {
          key_end = i;
          break;
        }
      }
      std::string_view key = args.substr(0, key_end);
      if (key.find('*') != std::string_view::npos) {
        out->push_back(
            {f.path, line, Rule::kDetPtrKey,
             "ordered container keyed by pointer: iteration follows "
             "allocation addresses, not program order — key by pid/index "
             "or use pid_key()"});
      }
    }
  }
}

// -- det-double-ns ----------------------------------------------------------

/// A declared name that *is* a nanosecond quantity.  Rates like
/// `bytes_per_ns` or `ns_per_instr` are legitimately double-valued, so
/// anything with a `per` stays exempt.
bool ns_quantity_name(const std::string& ident) {
  if (ident.find("per") != std::string::npos) return false;
  auto ends_with = [&](std::string_view s) {
    return ident.size() >= s.size() &&
           ident.compare(ident.size() - s.size(), s.size(), s) == 0;
  };
  return ident == "ns" || ident == "ns_" || ends_with("_ns") ||
         ends_with("_ns_");
}

bool ns_flavored(const std::string& ident) {
  auto has = [&](std::string_view n) {
    return ident.find(n) != std::string::npos;
  };
  return has("_ns") || has("ns_") || ident == "ns" || has("_time") ||
         has("time_") || has("_wait") || has("wait_") || has("stall") ||
         has("stolen") || has("makespan") || has("latency") ||
         has("duration") || ident == "SimTime" || ident == "Duration";
}

void scan_double_ns(const SourceFile& f, const JoinedCode& j,
                    std::vector<Finding>* out) {
  if (stats_exempt(f.path)) return;
  // Plain `double x` declarations in this file (functions excluded).
  std::vector<std::string> doubles;
  std::size_t at = 0;
  while ((at = find_word(j.text, "double", at)) != std::string_view::npos) {
    std::size_t i = skip_ws(j.text, at + 6);
    std::size_t decl_line = j.line_of(at);
    at += 6;
    if (i >= j.text.size() || !ident_char(j.text[i])) continue;
    std::size_t end = i;
    std::string name = read_ident(j.text, i, &end);
    std::size_t nxt = skip_ws(j.text, end);
    if (nxt < j.text.size() && j.text[nxt] == '(') continue;  // function
    if (ns_quantity_name(name)) {
      out->push_back(
          {f.path, decl_line, Rule::kDetDoubleNs,
           "'" + name +
               "' holds nanoseconds in a double; keep ns integral "
               "(its::Duration) and convert only at the report boundary"});
      continue;
    }
    doubles.push_back(std::move(name));
  }
  // Accumulations `x += <expr mentioning an ns-flavored identifier>`.
  at = 0;
  while ((at = j.text.find("+=", at)) != std::string_view::npos) {
    std::size_t line = j.line_of(at);
    // Left-hand side: the identifier immediately before the operator.
    std::size_t l = at;
    while (l > 0 &&
           std::isspace(static_cast<unsigned char>(j.text[l - 1])) != 0)
      --l;
    std::size_t lend = l;
    while (l > 0 && ident_char(j.text[l - 1])) --l;
    std::string lhs(j.text.substr(l, lend - l));
    std::size_t semi = j.text.find(';', at);
    std::string_view rhs = std::string_view(j.text).substr(
        at + 2, semi == std::string_view::npos ? j.text.size() - at - 2
                                               : semi - at - 2);
    at += 2;
    if (lhs.empty() ||
        std::find(doubles.begin(), doubles.end(), lhs) == doubles.end())
      continue;
    for (const std::string& ident : idents_in(rhs)) {
      if (ns_flavored(ident)) {
        out->push_back(
            {f.path, line, Rule::kDetDoubleNs,
             "double '" + lhs + "' accumulates '" + ident +
                 "' (a nanosecond quantity); sum in its::Duration and "
                 "divide once at the end"});
        break;
      }
    }
  }
}

}  // namespace

std::vector<Finding> scan_determinism(const SourceFile& f) {
  JoinedCode j(f);
  std::vector<Finding> out;
  scan_rand(f, j, &out);
  scan_clock(f, j, &out);
  scan_unordered_iter(f, j, &out);
  scan_ptr_key(f, j, &out);
  scan_double_ns(f, j, &out);
  return out;
}

}  // namespace its::lint
