// File collection and the end-to-end lint run.
#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace its::lint {

namespace {

namespace fs = std::filesystem;

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Expands files/directories into a sorted, deduplicated file list —
/// sorted so findings (and exit codes) are stable across filesystems.
std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::vector<std::string>* errors) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec))
        if (it->is_regular_file() && cpp_source(it->path()))
          files.push_back(it->path().generic_string());
      if (ec) errors->push_back(p + ": " + ec.message());
    } else if (fs::exists(path, ec)) {
      files.push_back(path.generic_string());
    } else {
      errors->push_back(p + ": no such file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// Findings ordered by rule (the exit-code order), then location.
void sort_findings(std::vector<Finding>* findings) {
  std::stable_sort(findings->begin(), findings->end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
}

}  // namespace

std::vector<Finding> lint_file(const SourceFile& f) {
  return apply_suppressions(f, scan_determinism(f));
}

LintResult run_lint(const LintOptions& opts) {
  LintResult r;
  std::vector<std::string> roots = opts.paths;
  const bool default_scan = roots.empty();
  if (default_scan)
    roots.push_back(
        (std::filesystem::path(opts.root) / "src").generic_string());

  if (!opts.arch_only && !opts.conc_only && !opts.units_only) {
    for (const std::string& path : collect_files(roots, &r.errors)) {
      SourceFile f;
      std::string err;
      if (!SourceFile::load(path, &f, &err)) {
        r.errors.push_back(err);
        continue;
      }
      std::vector<Finding> fs = lint_file(f);
      r.findings.insert(r.findings.end(),
                        std::make_move_iterator(fs.begin()),
                        std::make_move_iterator(fs.end()));
    }

    if (opts.registry) {
      std::vector<Finding> reg =
          scan_registry(registry_inputs_for_root(opts.root), &r.errors);
      r.findings.insert(r.findings.end(),
                        std::make_move_iterator(reg.begin()),
                        std::make_move_iterator(reg.end()));
    }
  }

  // The architecture pass is whole-program: it runs on full-tree scans
  // (and under --arch-only / --dot), never for explicit file lists.
  const bool want_dot = !opts.dot_path.empty();
  if (!opts.conc_only && !opts.units_only &&
      ((opts.arch && default_scan) || opts.arch_only || want_dot)) {
    ModuleGraph graph;
    std::vector<Finding> arch = scan_architecture(
        arch_options_for_root(opts.root), &graph, &r.errors);
    r.findings.insert(r.findings.end(),
                      std::make_move_iterator(arch.begin()),
                      std::make_move_iterator(arch.end()));
    if (want_dot) {
      if (opts.dot_path == "-") {
        print_dot(std::cout, graph);
      } else {
        std::ofstream dot(opts.dot_path);
        if (!dot)
          r.errors.push_back("cannot write " + opts.dot_path);
        else
          print_dot(dot, graph);
      }
    }
  }

  // The concurrency pass is whole-program too: full-tree scans (and
  // --conc-only / --lock-dot), never explicit file lists.
  const bool want_lock_dot = !opts.lock_dot_path.empty();
  if (!opts.arch_only && !opts.units_only &&
      ((opts.conc && default_scan) || opts.conc_only || want_lock_dot)) {
    LockGraph locks;
    std::vector<Finding> conc =
        scan_concurrency(conc_options_for_root(opts.root), &locks, &r.errors);
    r.findings.insert(r.findings.end(),
                      std::make_move_iterator(conc.begin()),
                      std::make_move_iterator(conc.end()));
    if (want_lock_dot) {
      if (opts.lock_dot_path == "-") {
        print_lock_dot(std::cout, locks);
      } else {
        std::ofstream dot(opts.lock_dot_path);
        if (!dot)
          r.errors.push_back("cannot write " + opts.lock_dot_path);
        else
          print_lock_dot(dot, locks);
      }
    }
  }

  // The units pass is whole-program as well: dimension maps span every
  // file, so it runs on full-tree scans (and --units-only) only.
  if (!opts.arch_only && !opts.conc_only &&
      ((opts.units && default_scan) || opts.units_only)) {
    std::vector<Finding> units =
        scan_units(units_options_for_root(opts.root), &r.errors);
    r.findings.insert(r.findings.end(),
                      std::make_move_iterator(units.begin()),
                      std::make_move_iterator(units.end()));
  }

  sort_findings(&r.findings);
  return r;
}

}  // namespace its::lint
