// Tokenizer, rule tables, suppression handling, and report formatting.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

namespace its::lint {

namespace {

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

constexpr RuleInfo kRules[kNumRules] = {
    {"det-rand",
     "nondeterministic generator (std::rand, random_device, unseeded "
     "mt19937) outside src/util/rng.* and src/fault/"},
    {"det-clock",
     "wall-clock read (system_clock, steady_clock, gettimeofday, ...) — "
     "simulation time is the only clock"},
    {"det-unordered-iter",
     "iteration over an unordered container in a file that emits events or "
     "accumulates metrics (hash order leaks into traces)"},
    {"det-ptr-key",
     "ordered container keyed by pointer (iteration order follows the "
     "allocator, not the program)"},
    {"det-double-ns",
     "double-precision accumulation of nanosecond quantities outside "
     "src/util/stats.* (silent rounding corrupts accounting)"},
    {"reg-kind-name",
     "EventKind enumerator without a kind_name() entry in event_trace.cpp"},
    {"reg-chrome-map",
     "EventKind enumerator without a Chrome-trace mapping in trace_json.cpp"},
    {"reg-invariant",
     "EventKind enumerator never referenced by invariant_checker.cpp"},
    {"reg-kind-count",
     "kNumEventKinds/static_assert out of sync with the EventKind body"},
    {"reg-metrics-report",
     "SimMetrics counter missing from report.cpp"},
    {"reg-config-doc",
     "SimConfig field not mentioned in docs/ or README.md"},
    {"lint-bad-suppress",
     "its-lint: allow(...) with an unknown rule or without a reason"},
    {"arch-layer",
     "module depends on a layer above it or on one missing from its "
     "docs/architecture.layers row (stale manifest edges also fire)"},
    {"arch-cycle",
     "header-level include cycle (reported as the full cycle path)"},
    {"arch-iwyu",
     "file references a project symbol whose defining header it does not "
     "directly include (transitive-include reliance)"},
    {"arch-unused-include",
     "project include whose header contributes no referenced symbol"},
    {"arch-guard", "header missing #pragma once"},
    {"arch-dead-api",
     "symbol declared in a module's public header but referenced by no "
     "other file in src/, tests/, tools/, examples/ or bench/"},
    {"conc-guarded",
     "class owns a mutex but a mutable non-atomic member lacks "
     "GUARDED_BY(...) (util/thread_annotations.h)"},
    {"conc-lock-order",
     "cycle in the cross-file lock-acquisition-order graph (deadlock; "
     "full cycle path reported, graph committed as docs/locks.dot)"},
    {"conc-atomic-order",
     "std::atomic access without an explicit memory_order (implicit "
     "seq_cst hides the intended ordering; farm.cpp is the exemplar)"},
    {"conc-shared-static",
     "mutable namespace-scope or function-local static state — shared "
     "across farm workers once the SMP refactor lands"},
    {"conc-false-share",
     "adjacent synchronization members without alignas separation "
     "(util::kDestructiveInterferenceSize) — false-sharing hot spot"},
    {"units-mixed-arith",
     "arithmetic/comparison mixing quantity dimensions (SimTime + SimTime, "
     "time vs bytes/pages/addresses) — see the algebra in util/types.h"},
    {"units-alias-decl",
     "bare uint64_t/double declaration whose vocabulary names a time, "
     "address, page or size quantity — use the its:: alias"},
    {"units-raw-literal",
     "unsuffixed time-scale literal in a time context — write 5_us/5_ms/5_s "
     "instead of counting zeros"},
    {"units-narrow",
     "time/size quantity narrowed to 32 bits or promoted to double outside "
     "the sanctioned report path"},
    {"units-overflow",
     "raw Duration*Duration or Duration*count product — use checked_mul, "
     "saturating_mul or wide_mul (util/types.h)"},
    {"units-shift-page",
     "manual >>12 / &0xfff page arithmetic — use vpn_of/page_base/"
     "kPageShift/kPageOffsetMask from util/types.h"},
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::string_view rule_id(Rule r) {
  return kRules[static_cast<std::size_t>(r)].id;
}

std::string_view rule_summary(Rule r) {
  return kRules[static_cast<std::size_t>(r)].summary;
}

bool rule_from_id(std::string_view id, Rule* out) {
  for (std::size_t i = 0; i < kNumRules; ++i) {
    if (kRules[i].id == id) {
      *out = static_cast<Rule>(i);
      return true;
    }
  }
  return false;
}

int exit_code_for(Rule r) { return 10 + static_cast<int>(r); }

int LintResult::exit_code() const {
  if (!errors.empty()) return kExitUsage;
  if (findings.empty()) return kExitClean;
  // Several distinct rules may fire in one run; the exit code is the
  // LOWEST firing rule's code, i.e. the most specific documented one —
  // never a catch-all — so callers can branch on the status reliably.
  Rule lowest = findings.front().rule;
  for (const Finding& f : findings)
    if (f.rule < lowest) lowest = f.rule;
  return exit_code_for(lowest);
}

std::string strip_comments_and_strings(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;  // )delim" terminator of a raw string literal
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t open = text.find('(', i + 2);
          if (open == std::string_view::npos) {
            out += c;
            break;
          }
          raw_delim = ")";
          raw_delim.append(text.substr(i + 2, open - (i + 2)));
          raw_delim += '"';
          for (std::size_t j = i; j <= open; ++j)
            out += text[j] == '\n' ? '\n' : ' ';
          i = open;
          st = State::kRawString;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'' && (i == 0 || !ident_char(text[i - 1]))) {
          // Identifier guard keeps digit separators (1'000'000) intact.
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
          st = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

bool contains_word(std::string_view line, std::string_view word) {
  std::size_t at = 0;
  while ((at = line.find(word, at)) != std::string_view::npos) {
    bool left_ok = at == 0 || !ident_char(line[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    at = end;
  }
  return false;
}

namespace {

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (!lines.empty() && lines.back().empty() && !text.empty() &&
      text.back() == '\n')
    lines.pop_back();
  return lines;
}

}  // namespace

bool SourceFile::load(const std::string& path, SourceFile* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = from_text(path, ss.str());
  return true;
}

SourceFile SourceFile::from_text(std::string path, std::string_view text) {
  SourceFile f;
  f.path = std::move(path);
  f.raw_lines = split_lines(text);
  f.code_lines = split_lines(strip_comments_and_strings(text));
  // strip() preserves newlines, so the twins must agree line for line.
  f.code_lines.resize(f.raw_lines.size());
  return f;
}

// ---------------------------------------------------------------------------
// Suppressions.

namespace {

struct Suppression {
  Rule rule;
  bool valid = false;      ///< Known rule and non-empty reason.
  std::string problem;     ///< Message when !valid.
};

/// Parses every `its-lint: allow(rule): reason` on one raw line.
std::vector<Suppression> parse_suppressions(std::string_view raw) {
  std::vector<Suppression> out;
  constexpr std::string_view kTag = "its-lint:";
  std::size_t at = 0;
  while ((at = raw.find(kTag, at)) != std::string_view::npos) {
    std::size_t i = at + kTag.size();
    at = i;
    while (i < raw.size() && raw[i] == ' ') ++i;
    constexpr std::string_view kAllow = "allow(";
    if (raw.compare(i, kAllow.size(), kAllow) != 0) {
      out.push_back({Rule::kBadSuppress, false,
                     "malformed its-lint directive (expected allow(<rule>))"});
      continue;
    }
    i += kAllow.size();
    std::size_t close = raw.find(')', i);
    if (close == std::string_view::npos) {
      out.push_back({Rule::kBadSuppress, false,
                     "unterminated its-lint: allow("});
      continue;
    }
    std::string id(raw.substr(i, close - i));
    Suppression s;
    if (!rule_from_id(id, &s.rule)) {
      s.problem = "unknown rule '" + id + "' in its-lint: allow()";
      out.push_back(s);
      continue;
    }
    // Mandatory reason: everything after "):" (the colon is required).
    std::size_t r = close + 1;
    while (r < raw.size() && raw[r] == ' ') ++r;
    if (r >= raw.size() || raw[r] != ':') {
      s.problem = "suppression of '" + id +
                  "' needs a reason — write allow(" + id + "): <why>";
      out.push_back(s);
      continue;
    }
    ++r;
    while (r < raw.size() && std::isspace(static_cast<unsigned char>(raw[r])))
      ++r;
    if (r >= raw.size()) {
      s.problem = "suppression of '" + id + "' has an empty reason";
      out.push_back(s);
      continue;
    }
    s.valid = true;
    out.push_back(s);
  }
  return out;
}

bool line_is_pure_comment(std::string_view raw) {
  std::size_t i = 0;
  while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i])))
    ++i;
  return i + 1 < raw.size() && raw[i] == '/' && raw[i + 1] == '/';
}

}  // namespace

std::vector<Finding> apply_suppressions(const SourceFile& f,
                                        std::vector<Finding> findings) {
  // allowed[rule] holds the 1-based lines a valid suppression covers.
  std::vector<std::vector<std::size_t>> allowed(kNumRules);
  std::vector<Finding> bad;
  for (std::size_t li = 0; li < f.raw_lines.size(); ++li) {
    const std::string& raw = f.raw_lines[li];
    if (raw.find("its-lint:") == std::string::npos) continue;
    // A whole-line comment guards the next line; a trailing one its own.
    std::size_t target = line_is_pure_comment(raw) ? li + 2 : li + 1;
    for (const Suppression& s : parse_suppressions(raw)) {
      if (!s.valid) {
        bad.push_back(
            {f.path, li + 1, Rule::kBadSuppress, s.problem});
      } else {
        allowed[static_cast<std::size_t>(s.rule)].push_back(target);
      }
    }
  }
  std::vector<Finding> out;
  for (Finding& fi : findings) {
    const auto& lines = allowed[static_cast<std::size_t>(fi.rule)];
    if (std::find(lines.begin(), lines.end(), fi.line) != lines.end())
      continue;
    out.push_back(std::move(fi));
  }
  out.insert(out.end(), bad.begin(), bad.end());
  return out;
}

// ---------------------------------------------------------------------------
// Output.

void print_findings(std::ostream& os, const LintResult& r) {
  for (const std::string& e : r.errors) os << "its_lint: error: " << e << "\n";
  for (const Finding& f : r.findings) {
    os << f.file;
    if (f.line != 0) os << ":" << f.line;
    os << ": [" << rule_id(f.rule) << "] " << f.message << "\n";
  }
  if (r.findings.empty() && r.errors.empty())
    os << "its_lint: clean\n";
  else
    os << "its_lint: " << r.findings.size() << " finding(s)\n";
}

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (c == '\n')
      os << "\\n";
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
}

}  // namespace

void print_json(std::ostream& os, const LintResult& r) {
  os << "{\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    if (i != 0) os << ",";
    os << "\n  {\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"rule\":\"" << rule_id(f.rule)
       << "\",\"exit_code\":" << exit_code_for(f.rule) << ",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "\n],\"errors\":[";
  for (std::size_t i = 0; i < r.errors.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, r.errors[i]);
    os << "\"";
  }
  os << "],\"exit_code\":" << r.exit_code() << "}\n";
}

}  // namespace its::lint
