// its_lint — the project's self-hosted determinism & accounting linter.
//
// Every number this reproduction reports rests on the simulator being
// bit-identical across runs and platforms: the golden-run suite diffs raw
// SimMetrics integers, and the invariant checker replays traces event by
// event.  Two classes of regression break that silently:
//
//   1. *Determinism leaks* — wall-clock reads, unseeded generators, or
//      hash-order iteration feeding the trace/metrics path.  These do not
//      fail a test on the machine that introduced them; they fail weeks
//      later on someone else's libstdc++.
//   2. *Registry drift* — the hand-maintained tables that must stay in
//      sync with `enum class EventKind` (kind_name, the Chrome exporter,
//      the invariant rules), with `SimMetrics` (the CSV report), and with
//      `SimConfig` (the docs).  A forgotten entry corrupts accounting or
//      documentation without tripping any runtime check.
//
// This tool scans `src/` at lint time (ctest label `lint`, CI job `lint`)
// with a small comment/string-stripping tokenizer and flags both classes.
// It is deliberately heuristic — a tokenizer, not a compiler front end —
// so every rule supports an explicit, reasoned suppression:
//
//   std::mt19937 gen;  // its-lint: allow(det-rand): seeded by caller below
//
// A suppression without a reason is itself a finding (lint-bad-suppress).
// See docs/static-analysis.md for the full rule catalogue.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace its::lint {

/// Every rule the linter knows.  The enumerator order defines the per-rule
/// exit code (see `exit_code_for`) and the order findings are reported in.
enum class Rule : std::size_t {
  kDetRand,           ///< std::rand/random_device/unseeded mt19937.
  kDetClock,          ///< system_clock/steady_clock/gettimeofday/...
  kDetUnorderedIter,  ///< Hash-order iteration in event/metrics files.
  kDetPtrKey,         ///< Pointer-keyed ordered containers.
  kDetDoubleNs,       ///< double accumulation of nanosecond quantities.
  kRegKindName,       ///< EventKind enumerator missing from kind_name().
  kRegChromeMap,      ///< EventKind enumerator missing from trace_json.cpp.
  kRegInvariant,      ///< EventKind enumerator unreferenced by the checker.
  kRegKindCount,      ///< kNumEventKinds disagrees with the enum body.
  kRegMetricsReport,  ///< SimMetrics counter missing from report.cpp.
  kRegConfigDoc,      ///< SimConfig field undocumented in docs//README.
  kBadSuppress,       ///< Malformed/unreasoned its-lint: allow(...).
  kArchLayer,         ///< Module edge absent from docs/architecture.layers.
  kArchCycle,         ///< Header-level include cycle.
  kArchIwyu,          ///< Symbol used via a transitive include only.
  kArchUnusedInclude, ///< Project include contributing no symbol.
  kArchGuard,         ///< Header without #pragma once.
  kArchDeadApi,       ///< Public-header symbol referenced by no other file.
  kConcGuarded,       ///< Lock-owning class member without GUARDED_BY.
  kConcLockOrder,     ///< Cycle in the lock-acquisition-order graph.
  kConcAtomicOrder,   ///< Atomic access without explicit memory_order.
  kConcSharedStatic,  ///< Mutable static state shared across workers.
  kConcFalseShare,    ///< Adjacent sync members without alignas padding.
  kUnitsMixedArith,   ///< Arithmetic/comparison mixing quantity dimensions.
  kUnitsAliasDecl,    ///< Bare uint64_t/double decl where an alias exists.
  kUnitsRawLiteral,   ///< Unsuffixed time-scale literal (use _us/_ms/_s).
  kUnitsNarrow,       ///< Time/size narrowed to 32 bits or double-promoted.
  kUnitsOverflow,     ///< Raw Duration product without the checked helpers.
  kUnitsShiftPage,    ///< Manual >>12 / &0xfff instead of vpn_of/page_base.
};

inline constexpr std::size_t kNumRules =
    static_cast<std::size_t>(Rule::kUnitsShiftPage) + 1;

/// Stable kebab-case rule identifier, used in output and in allow(...).
std::string_view rule_id(Rule r);

/// One-line description shown by --list-rules.
std::string_view rule_summary(Rule r);

/// Parses an allow(...) identifier; returns false for unknown ids.
bool rule_from_id(std::string_view id, Rule* out);

/// Process exit code reserved for violations of `r` (10 + enumerator).
/// A run that violates several distinct rules exits with the LOWEST
/// firing rule code — the most specific documented code — so scripts can
/// always branch on the exit status (see --list-rules).
int exit_code_for(Rule r);
inline constexpr int kExitClean = 0;
inline constexpr int kExitUsage = 1;

struct Finding {
  std::string file;  ///< Path as given to the scanner (repo-relative in CI).
  std::size_t line = 0;  ///< 1-based; 0 for whole-file registry findings.
  Rule rule = Rule::kBadSuppress;
  std::string message;
};

/// A loaded source file: the raw text plus a comment/string-blanked twin
/// ("code") on which all token rules run.  Line structure is preserved so
/// findings carry accurate line numbers.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;   ///< Verbatim, for suppressions.
  std::vector<std::string> code_lines;  ///< Comments/strings blanked.

  /// Loads and tokenizes `path`.  Returns false (and sets `error`) when
  /// the file cannot be read.
  static bool load(const std::string& path, SourceFile* out,
                   std::string* error);

  /// Builds a SourceFile from in-memory text (fixture tests).
  static SourceFile from_text(std::string path, std::string_view text);
};

/// Replaces //, /*...*/ comments and string/char literals with spaces,
/// preserving newlines.  Exposed for tests.
std::string strip_comments_and_strings(std::string_view text);

/// True when `word` occurs in `line` delimited by non-identifier chars.
bool contains_word(std::string_view line, std::string_view word);

// ---------------------------------------------------------------------------
// Determinism rules (per file).

/// Runs every determinism rule on one file.  Suppressions are NOT applied
/// here; `apply_suppressions` handles them so the pipeline is testable in
/// isolation.
std::vector<Finding> scan_determinism(const SourceFile& f);

// ---------------------------------------------------------------------------
// Registry rules (cross-file).

/// The files the registry rules read, resolved relative to --root.
struct RegistryInputs {
  std::string event_trace_h;       ///< src/obs/event_trace.h
  std::string event_trace_cpp;     ///< src/obs/event_trace.cpp
  std::string trace_json_cpp;      ///< src/obs/trace_json.cpp
  std::string invariant_cpp;       ///< src/obs/invariant_checker.cpp
  std::string metrics_h;           ///< src/core/metrics.h
  std::string report_cpp;          ///< src/core/report.cpp
  std::string config_h;            ///< src/core/config.h
  std::vector<std::string> docs;   ///< README.md + docs/*.md
};

/// Default layout under `root` (only files that exist are filled in).
RegistryInputs registry_inputs_for_root(const std::string& root);

std::vector<Finding> scan_registry(const RegistryInputs& in,
                                   std::vector<std::string>* errors);

/// Parses `enum class <name> : ... { ... };` enumerator names, in order.
/// Exposed for tests.  Returns empty when the enum is absent.
std::vector<std::string> parse_enum_body(const SourceFile& f,
                                         std::string_view enum_name);

/// Parses the field names of `struct <name> { ... };`.  Member functions
/// and nested type definitions are skipped.  Exposed for tests.
std::vector<std::string> parse_struct_fields(const SourceFile& f,
                                             std::string_view struct_name);

// ---------------------------------------------------------------------------
// Architecture rules (whole-program).

/// What the architecture pass reads.  Everything is resolved relative to
/// `root` by `arch_options_for_root`, but fixtures may point the fields
/// anywhere.
struct ArchOptions {
  std::string root;           ///< Tree root; the graph is built from root/src.
  std::string src_dir;        ///< Directory whose modules form the graph.
  std::string manifest_path;  ///< The docs/architecture.layers manifest.
  /// Extra trees whose files count as *references* for arch-dead-api
  /// (tests/, tools/, examples/, bench/) but contribute no graph edges.
  std::vector<std::string> usage_dirs;
};

/// Default layout: src_dir = root/src, manifest = root/docs/
/// architecture.layers, usage_dirs = the sibling trees that exist.
ArchOptions arch_options_for_root(const std::string& root);

/// The module-level dependency graph derived from `#include "..."` edges.
struct ModuleGraph {
  struct Edge {
    std::string from, to;  ///< Module names (first path component).
    std::string file;      ///< Witness include site ...
    std::size_t line = 0;  ///< ... for reporting.
  };
  std::vector<std::string> modules;  ///< Sorted module names.
  std::vector<Edge> edges;           ///< Deduped, sorted (from, to).
};

/// One row of the layer manifest: `module: dep dep ...`.
struct ManifestRow {
  std::string module;
  std::vector<std::string> deps;
  std::size_t line = 0;  ///< 1-based line in the manifest file.
};

/// Parses docs/architecture.layers.  Rows must be topologically ordered —
/// every dep declared on an earlier line — which makes module cycles
/// inexpressible; violations land in `errors`.
bool parse_manifest(const SourceFile& f, std::vector<ManifestRow>* rows,
                    std::vector<std::string>* errors);

/// Runs the whole arch-* family: layering vs the manifest (both
/// directions — an include the manifest does not allow AND a manifest
/// edge no include realises), header-level include cycles, IWYU
/// (transitive-include reliance), unused project includes, missing
/// #pragma once, and dead public API.  Suppressions are applied
/// internally (the pass owns the file loading); `graph` receives the
/// module graph for --dot when non-null.
std::vector<Finding> scan_architecture(const ArchOptions& opts,
                                       ModuleGraph* graph,
                                       std::vector<std::string>* errors);

/// Graphviz rendering of the module graph (stable, sorted output).
void print_dot(std::ostream& os, const ModuleGraph& g);

// ---------------------------------------------------------------------------
// Concurrency rules (whole-program).

/// What the concurrency pass reads: the src tree, nothing else — there is
/// no manifest; the committed docs/locks.dot artifact is checked by the
/// test suite and CI diffing it against a fresh --lock-dot run.
struct ConcOptions {
  std::string root;     ///< Tree root (findings are reported relative to it).
  std::string src_dir;  ///< Directory scanned, normally root/src.
};

/// Default layout: src_dir = root/src.
ConcOptions conc_options_for_root(const std::string& root);

/// The cross-file lock-acquisition-order graph: an edge A -> B means some
/// function acquires B while holding A (directly, or through a call the
/// scanner can resolve by method name).  Deadlock freedom = this is a DAG.
struct LockGraph {
  struct Edge {
    std::string from, to;  ///< Canonical lock names (Class::member).
    std::string file;      ///< Witness acquisition/call site ...
    std::size_t line = 0;  ///< ... for reporting.
  };
  std::vector<std::string> locks;  ///< Sorted canonical lock names.
  std::vector<Edge> edges;         ///< Deduped, sorted (from, to).
};

/// Runs the whole conc-* family: GUARDED_BY coverage of lock-owning
/// classes, lock-order cycles, implicit-seq_cst atomic accesses, mutable
/// static state, and false-sharing-prone adjacent sync members.
/// Suppressions are applied internally; `graph` receives the lock graph
/// for --lock-dot when non-null.
std::vector<Finding> scan_concurrency(const ConcOptions& opts,
                                      LockGraph* graph,
                                      std::vector<std::string>* errors);

/// In-memory variant (fixture and gate tests): scans exactly `files`,
/// reporting findings against each SourceFile's `path` as given.
std::vector<Finding> scan_concurrency_files(
    const std::vector<SourceFile>& files, LockGraph* graph);

/// Graphviz rendering of the lock graph (stable, sorted output).
void print_lock_dot(std::ostream& os, const LockGraph& g);

// ---------------------------------------------------------------------------
// Units rules (whole-program).

/// What the units pass reads: the src tree, nothing else.  The quantity
/// algebra itself is documented in src/util/types.h and
/// docs/static-analysis.md#units.
struct UnitsOptions {
  std::string root;     ///< Tree root (findings are reported relative to it).
  std::string src_dir;  ///< Directory scanned, normally root/src.
};

/// Default layout: src_dir = root/src.
UnitsOptions units_options_for_root(const std::string& root);

/// Runs the whole units-* family: a typedef-aware dimension analysis over
/// declarations, expressions and cross-file call edges enforcing
///   SimTime - SimTime -> Duration,  SimTime + Duration -> SimTime,
/// flagging SimTime + SimTime, any time-vs-space mixing, vocabulary-typed
/// bare uint64_t/double declarations, unsuffixed time-scale literals,
/// narrowing of time quantities, raw Duration products, and manual page
/// shifts.  Suppressions are applied internally.
std::vector<Finding> scan_units(const UnitsOptions& opts,
                                std::vector<std::string>* errors);

/// In-memory variant (fixture and gate tests): scans exactly `files`,
/// reporting findings against each SourceFile's `path` as given.
std::vector<Finding> scan_units_files(const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Driver.

struct LintOptions {
  std::string root = ".";       ///< Repo root (registry files live below).
  std::vector<std::string> paths;  ///< Files/dirs to scan; default {root}/src.
  bool registry = true;         ///< Run the cross-file rules.
  bool arch = true;             ///< Run the architecture rules.
  bool arch_only = false;       ///< Run ONLY the architecture rules.
  bool conc = true;             ///< Run the concurrency rules.
  bool conc_only = false;       ///< Run ONLY the concurrency rules.
  bool units = true;            ///< Run the units rules.
  bool units_only = false;      ///< Run ONLY the units rules.
  bool json = false;            ///< Machine-readable output.
  std::string dot_path;         ///< Write the module graph here ("-": stdout).
  std::string lock_dot_path;    ///< Write the lock graph here ("-": stdout).
};

struct LintResult {
  std::vector<Finding> findings;   ///< Post-suppression, sorted.
  std::vector<std::string> errors;  ///< Unreadable files etc.

  int exit_code() const;
};

/// Filters `findings` through the `its-lint: allow(rule): reason` comments
/// of `f`, appending kBadSuppress findings for malformed ones.  Exposed
/// for tests.
std::vector<Finding> apply_suppressions(const SourceFile& f,
                                        std::vector<Finding> findings);

/// Scans one already-loaded file (determinism rules + suppressions).
std::vector<Finding> lint_file(const SourceFile& f);

/// Full run: collect files, per-file rules, registry rules.
LintResult run_lint(const LintOptions& opts);

/// Human-readable report (one finding per line, gcc-style).
void print_findings(std::ostream& os, const LintResult& r);

/// JSON report: {"findings":[...],"errors":[...],"exit_code":N}.
void print_json(std::ostream& os, const LintResult& r);

}  // namespace its::lint
