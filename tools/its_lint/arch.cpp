// Architecture rules: the whole-program include-graph checks.
//
// Where determinism.cpp polices single files and registry.cpp polices a
// handful of known registries, this pass parses every `#include "..."`
// edge under src/ into (a) a file-level include graph and (b) a
// module-level dependency graph (module = first path component, e.g.
// src/vm/mm.h -> "vm"), and checks:
//
//   arch-layer          the module graph against docs/architecture.layers.
//                       The manifest is exact, not an upper bound: an
//                       include the manifest does not allow fails, and so
//                       does a manifest edge no include realises — the
//                       committed layering can never drift from reality.
//   arch-cycle          header-level include cycles (full path reported).
//   arch-iwyu           a file referencing a project symbol whose defining
//                       header it only includes transitively.
//   arch-unused-include a project include contributing no referenced
//                       symbol.
//   arch-guard          headers missing #pragma once.
//   arch-dead-api       a symbol declared in a public header that no file
//                       outside the header (and its own .cpp) references,
//                       counting src/, tests/, tools/, examples/, bench/.
//
// Symbols are harvested with the same tokenizer the other passes use: a
// context-tracking scan over comment/string-blanked text that records
// namespace-scope struct/class/enum definitions, `using X = ...` aliases,
// constexpr constants, and free functions.  It is heuristic by design —
// the reasoned-suppression syntax applies to every rule here too.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include <filesystem>

namespace its::lint {

namespace {

namespace fs = std::filesystem;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool is_header(const std::string& path) {
  return path.size() >= 2 && (path.rfind(".h") == path.size() - 2 ||
                              (path.size() >= 4 &&
                               path.rfind(".hpp") == path.size() - 4));
}

std::vector<std::string> collect_tree(const std::string& dir,
                                      std::vector<std::string>* errors) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec))
    if (it->is_regular_file() && cpp_source(it->path()))
      files.push_back(it->path().generic_string());
  if (ec) errors->push_back(dir + ": " + ec.message());
  std::sort(files.begin(), files.end());
  return files;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

std::string read_ident(std::string_view text, std::size_t i,
                       std::size_t* end) {
  std::size_t j = i;
  while (j < text.size() && ident_char(text[j])) ++j;
  *end = j;
  return std::string(text.substr(i, j - i));
}

/// One loaded file plus the derived views every rule shares.
struct ArchFile {
  SourceFile src;
  std::string rel;     ///< Path relative to the tree root (src/vm/mm.h).
  std::string module;  ///< First component under src/ ("" outside src/).
  std::string text;    ///< Joined code lines.
  std::vector<std::size_t> line_start;  ///< For offset -> line.
  std::set<std::string> idents;         ///< Every identifier in `text`.

  std::size_t line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void build_views(ArchFile* f) {
  for (const std::string& l : f->src.code_lines) {
    f->line_start.push_back(f->text.size());
    f->text += l;
    f->text += '\n';
  }
  for (std::size_t i = 0; i < f->text.size();) {
    if (ident_char(f->text[i]) &&
        std::isdigit(static_cast<unsigned char>(f->text[i])) == 0) {
      std::size_t end = i;
      f->idents.insert(read_ident(f->text, i, &end));
      i = end;
    } else {
      ++i;
    }
  }
}

/// Whole-word search over a file's joined code (npos when absent).
std::size_t find_word(std::string_view text, std::string_view word) {
  std::size_t at = 0;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    bool left_ok = at == 0 || !ident_char(text[at - 1]);
    std::size_t end = at + word.size();
    bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return at;
    at = end;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Include extraction.

struct Include {
  std::string target;    ///< The quoted path, verbatim.
  std::size_t line = 0;  ///< 1-based.
};

/// Quoted includes only — system headers never participate in the module
/// graph.  The quoted path is read from the raw line (the tokenizer
/// blanks string literals), the directive itself is confirmed against the
/// blanked line so commented-out includes do not count.
std::vector<Include> parse_includes(const SourceFile& f) {
  std::vector<Include> out;
  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    const std::string& code = i < f.code_lines.size() ? f.code_lines[i] : "";
    std::size_t h = skip_ws(code, 0);
    if (h >= code.size() || code[h] != '#') continue;
    h = skip_ws(code, h + 1);
    if (code.compare(h, 7, "include") != 0) continue;
    const std::string& raw = f.raw_lines[i];
    std::size_t open = raw.find('"');
    if (open == std::string::npos) continue;  // <...> form
    std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back({raw.substr(open + 1, close - open - 1), i + 1});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exported-symbol harvesting.

struct Symbol {
  std::string name;
  std::size_t line = 0;
  bool type_like = false;  ///< Type/enum/alias/constant (vs free function).
};

constexpr std::string_view kSkipKeywords[] = {
    "inline",  "static",   "extern",   "virtual",  "explicit", "friend",
    "typename", "constinit", "consteval", "mutable", "volatile", "register",
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "operator", "new",
    "delete", "case", "do", "else", "goto", "throw", "try", "catch",
    "public", "private", "protected", "typedef", "concept", "requires",
    "co_await", "co_return", "co_yield", "export", "asm", "this",
    "true", "false", "nullptr", "default", "union", "assert",
};

constexpr std::string_view kBuiltinTypes[] = {
    "void", "bool", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "auto", "wchar_t", "char8_t", "char16_t",
    "char32_t", "size_t", "ssize_t", "ptrdiff_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
};

bool in_list(std::string_view w, const std::string_view* list,
             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (list[i] == w) return true;
  return false;
}

/// Skips a balanced <...> starting at `open`; stops at ';' (not a
/// template after all).  Returns the offset just past the closing '>'.
std::size_t skip_angles(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>' && --depth == 0) return i + 1;
    if (text[i] == ';') return i;
  }
  return text.size();
}

std::size_t skip_to_matching_brace(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Namespace-scope declarations of one file.  Context tracking: `{`
/// pushed by a namespace keeps us "at namespace scope"; any other `{`
/// (type bodies, function bodies, initializers) hides its contents.
std::vector<Symbol> parse_exports(const ArchFile& f) {
  std::string_view text = f.text;
  std::vector<Symbol> out;
  // true = namespace brace, false = anything else.
  std::vector<bool> ctx;
  auto ns_scope = [&] {
    return std::all_of(ctx.begin(), ctx.end(), [](bool b) { return b; });
  };
  std::size_t i = 0;
  int parens = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '{') {
      ctx.push_back(false);
      ++i;
      continue;
    }
    if (c == '}') {
      if (!ctx.empty()) ctx.pop_back();
      ++i;
      continue;
    }
    if (c == '(') {
      ++parens;
      ++i;
      continue;
    }
    if (c == ')') {
      if (parens > 0) --parens;
      ++i;
      continue;
    }
    if (c == '#') {  // preprocessor directive: skip the line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    std::size_t start = i;
    std::size_t end = start;
    std::string w = read_ident(text, start, &end);
    i = end;
    if (w == "template") {
      std::size_t lt = skip_ws(text, i);
      if (lt < text.size() && text[lt] == '<') i = skip_angles(text, lt);
      continue;
    }
    if (w == "namespace") {
      while (i < text.size() && text[i] != '{' && text[i] != ';') ++i;
      if (i < text.size() && text[i] == '{') {
        ctx.push_back(true);
        ++i;
      }
      continue;
    }
    if (w == "struct" || w == "class") {
      std::size_t p = skip_ws(text, i);
      if (p >= text.size() || !ident_char(text[p])) continue;  // anonymous
      std::size_t name_end = p;
      std::string name = read_ident(text, p, &name_end);
      // Attribute macros (util/thread_annotations.h) and alignas precede
      // the tag name — `class CAPABILITY("mutex") Mutex` — and the tag,
      // not the annotation, is the export.
      while (name == "CAPABILITY" || name == "SCOPED_CAPABILITY" ||
             name == "alignas") {
        std::size_t a = skip_ws(text, name_end);
        if (a < text.size() && text[a] == '(') {
          int depth = 0;
          while (a < text.size()) {
            if (text[a] == '(') ++depth;
            if (text[a] == ')' && --depth == 0) {
              ++a;
              break;
            }
            ++a;
          }
        }
        a = skip_ws(text, a);
        if (a >= text.size() || !ident_char(text[a])) break;
        p = a;
        name = read_ident(text, p, &name_end);
      }
      std::size_t name_line = f.line_of(p);
      std::size_t q = skip_ws(text, name_end);
      if (q < text.size() && ident_char(text[q])) {  // "final"
        std::size_t fe = q;
        read_ident(text, q, &fe);
        q = skip_ws(text, fe);
      }
      if (q < text.size() && text[q] == '<') {  // specialization
        q = skip_ws(text, skip_angles(text, q));
      } else if (q < text.size() && (text[q] == '{' || text[q] == ':')) {
        if (ns_scope() && parens == 0)
          out.push_back({name, name_line, true});
      }
      i = name_end;
      continue;
    }
    if (w == "enum") {
      std::size_t p = skip_ws(text, i);
      if (text.compare(p, 5, "class") == 0 ||
          text.compare(p, 6, "struct") == 0) {
        std::size_t ke = p;
        read_ident(text, p, &ke);
        p = skip_ws(text, ke);
      }
      if (p >= text.size() || !ident_char(text[p])) continue;
      std::size_t name_end = p;
      std::string name = read_ident(text, p, &name_end);
      std::size_t name_line = f.line_of(p);
      std::size_t q = name_end;
      while (q < text.size() && text[q] != '{' && text[q] != ';') ++q;
      if (q < text.size() && text[q] == '{') {
        if (ns_scope() && parens == 0)
          out.push_back({name, name_line, true});
        i = skip_to_matching_brace(text, q);  // enumerators stay private
      } else {
        i = name_end;
      }
      continue;
    }
    if (w == "using") {
      std::size_t p = skip_ws(text, i);
      std::size_t name_end = p;
      std::string name =
          p < text.size() && ident_char(text[p]) ? read_ident(text, p,
                                                              &name_end)
                                                 : std::string();
      std::size_t q = skip_ws(text, name_end);
      if (!name.empty() && name != "namespace" && q < text.size() &&
          text[q] == '=' && ns_scope() && parens == 0)
        out.push_back({name, f.line_of(p), true});
      while (i < text.size() && text[i] != ';') ++i;
      continue;
    }
    if (w == "constexpr") {
      if (!ns_scope() || parens != 0) continue;
      // Scan the declaration: `= init;` is a constant, `(...)` a function
      // (the function branch below will pick the name up on its own).
      std::size_t q = i;
      int angles = 0;
      std::size_t last_ident_at = std::string_view::npos;
      std::string last_ident;
      while (q < text.size()) {
        char d = text[q];
        if (d == '<') ++angles;
        if (d == '>' && angles > 0) --angles;
        if (angles == 0 && (d == '=' || d == '(' || d == ';' || d == '{'))
          break;
        if (ident_char(d) &&
            std::isdigit(static_cast<unsigned char>(d)) == 0) {
          last_ident_at = q;
          last_ident = read_ident(text, q, &q);
          continue;
        }
        ++q;
      }
      if (q < text.size() && (text[q] == '=' || text[q] == '{') &&
          !last_ident.empty() &&
          !in_list(last_ident, kBuiltinTypes, std::size(kBuiltinTypes)))
        out.push_back({last_ident, f.line_of(last_ident_at), true});
      if (q < text.size() && (text[q] == '=' || text[q] == ';'))
        i = q;  // constants: nothing else to harvest before the ';'
      continue;
    }
    if (in_list(w, kSkipKeywords, std::size(kSkipKeywords)) ||
        in_list(w, kBuiltinTypes, std::size(kBuiltinTypes)))
      continue;
    // A free function: `name(` at namespace scope, unqualified (a leading
    // `::` means an out-of-line member of an already-indexed type).
    if (ns_scope() && parens == 0 && i < text.size() && text[i] == '(' &&
        !(start > 0 && text[start - 1] == ':'))
      out.push_back({w, f.line_of(start), false});
  }
  return out;
}

/// apply_suppressions both filters and *reports* malformed directives;
/// the determinism pass already reports those for every src file, so the
/// arch pass filters only.
std::vector<Finding> filter_suppressed(const SourceFile& f,
                                       std::vector<Finding> findings) {
  std::vector<Finding> out = apply_suppressions(f, std::move(findings));
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const Finding& fi) {
                             return fi.rule == Rule::kBadSuppress;
                           }),
            out.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Manifest.

bool parse_manifest(const SourceFile& f, std::vector<ManifestRow>* rows,
                    std::vector<std::string>* errors) {
  bool ok = true;
  std::vector<std::string> declared;
  for (std::size_t li = 0; li < f.raw_lines.size(); ++li) {
    std::string line = f.raw_lines[li];
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t colon = line.find(':');
    std::size_t first = skip_ws(line, 0);
    if (first >= line.size()) continue;  // blank / comment-only
    if (colon == std::string::npos) {
      errors->push_back(f.path + ":" + std::to_string(li + 1) +
                        ": manifest line is not `module: deps...`");
      ok = false;
      continue;
    }
    ManifestRow row;
    row.line = li + 1;
    row.module = line.substr(first, colon - first);
    while (!row.module.empty() && row.module.back() == ' ')
      row.module.pop_back();
    if (row.module.empty() ||
        std::find(declared.begin(), declared.end(), row.module) !=
            declared.end()) {
      errors->push_back(f.path + ":" + std::to_string(li + 1) +
                        ": empty or duplicate module '" + row.module + "'");
      ok = false;
      continue;
    }
    std::size_t i = colon + 1;
    while (i < line.size()) {
      i = skip_ws(line, i);
      std::size_t start = i;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])) == 0)
        ++i;
      if (i == start) break;
      std::string dep = line.substr(start, i - start);
      if (dep == row.module ||
          std::find(declared.begin(), declared.end(), dep) ==
              declared.end()) {
        errors->push_back(
            f.path + ":" + std::to_string(li + 1) + ": dependency '" + dep +
            "' of '" + row.module +
            "' is not declared on an earlier line — the manifest is "
            "bottom-up, so this would be a layering inversion or a cycle");
        ok = false;
        continue;
      }
      row.deps.push_back(std::move(dep));
    }
    declared.push_back(row.module);
    rows->push_back(std::move(row));
  }
  return ok;
}

ArchOptions arch_options_for_root(const std::string& root) {
  ArchOptions o;
  o.root = root;
  o.src_dir = (fs::path(root) / "src").generic_string();
  o.manifest_path =
      (fs::path(root) / "docs" / "architecture.layers").generic_string();
  for (const char* tree : {"tests", "tools", "examples", "bench"}) {
    fs::path p = fs::path(root) / tree;
    std::error_code ec;
    if (fs::is_directory(p, ec)) o.usage_dirs.push_back(p.generic_string());
  }
  return o;
}

void print_dot(std::ostream& os, const ModuleGraph& g) {
  os << "// Module dependency graph, generated by `its_lint --dot`.\n"
     << "// Do not edit: CI diffs this file against a fresh run.\n"
     << "digraph its_modules {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const std::string& m : g.modules) os << "  \"" << m << "\";\n";
  for (const ModuleGraph::Edge& e : g.edges)
    os << "  \"" << e.from << "\" -> \"" << e.to << "\";\n";
  os << "}\n";
}

// ---------------------------------------------------------------------------
// The pass.

std::vector<Finding> scan_architecture(const ArchOptions& opts,
                                       ModuleGraph* graph,
                                       std::vector<std::string>* errors) {
  std::vector<Finding> out;

  // -- Load the manifest.
  SourceFile manifest;
  std::string err;
  std::vector<ManifestRow> rows;
  if (!SourceFile::load(opts.manifest_path, &manifest, &err)) {
    errors->push_back(err + " (the layer manifest is required; see "
                            "docs/architecture.md)");
    return out;
  }
  if (!parse_manifest(manifest, &rows, errors)) return out;

  // -- Load every file: src/ builds the graph, usage trees only witness
  //    symbol references.
  std::vector<ArchFile> files;
  {
    std::vector<std::string> all = collect_tree(opts.src_dir, errors);
    for (const std::string& dir : opts.usage_dirs) {
      std::vector<std::string> extra = collect_tree(dir, errors);
      all.insert(all.end(), extra.begin(), extra.end());
    }
    for (const std::string& p : all) {
      ArchFile f;
      if (!SourceFile::load(p, &f.src, &err)) {
        errors->push_back(err);
        continue;
      }
      f.rel = fs::path(p).lexically_relative(opts.root).generic_string();
      std::string in_src =
          fs::path(p).lexically_relative(opts.src_dir).generic_string();
      if (in_src.compare(0, 2, "..") != 0) {
        std::size_t slash = in_src.find('/');
        if (slash != std::string::npos) f.module = in_src.substr(0, slash);
      }
      build_views(&f);
      files.push_back(std::move(f));
    }
  }

  // src-relative include path ("vm/mm.h") -> files index.
  std::map<std::string, std::size_t> by_inc_path;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].module.empty()) continue;
    by_inc_path[fs::path(files[i].src.path)
                    .lexically_relative(opts.src_dir)
                    .generic_string()] = i;
  }

  // -- File-level include graph over src/ (targets resolved against
  //    src_dir; anything else — system or third-party — is ignored).
  struct FileEdge {
    std::size_t to;
    std::size_t line;
    std::string spelled;
  };
  std::vector<std::vector<FileEdge>> inc(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].module.empty()) continue;
    for (const Include& in : parse_includes(files[i].src)) {
      auto it = by_inc_path.find(in.target);
      if (it == by_inc_path.end()) continue;
      inc[i].push_back({it->second, in.line, in.target});
    }
  }

  // -- Module graph.
  ModuleGraph g;
  {
    std::set<std::string> mods;
    for (const ArchFile& f : files)
      if (!f.module.empty()) mods.insert(f.module);
    g.modules.assign(mods.begin(), mods.end());
    std::map<std::pair<std::string, std::string>, ModuleGraph::Edge> edges;
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (const FileEdge& e : inc[i]) {
        const std::string& from = files[i].module;
        const std::string& to = files[e.to].module;
        if (from == to) continue;
        auto key = std::make_pair(from, to);
        auto it = edges.find(key);
        // First witness in (file, line) order — collection is sorted.
        if (it == edges.end())
          edges.emplace(key,
                        ModuleGraph::Edge{from, to, files[i].rel, e.line});
      }
    }
    for (auto& [key, e] : edges) g.edges.push_back(std::move(e));
  }
  if (graph != nullptr) *graph = g;

  // -- arch-layer: observed ⊆ manifest AND manifest ⊆ observed.
  std::map<std::string, const ManifestRow*> row_of;
  std::vector<std::string> declared_order;
  for (const ManifestRow& r : rows) {
    row_of[r.module] = &r;
    declared_order.push_back(r.module);
  }
  auto declared_at = [&](const std::string& m) {
    auto it = std::find(declared_order.begin(), declared_order.end(), m);
    return it == declared_order.end()
               ? declared_order.size()
               : static_cast<std::size_t>(it - declared_order.begin());
  };
  for (const std::string& m : g.modules) {
    if (row_of.find(m) == row_of.end())
      out.push_back({manifest.path, 0, Rule::kArchLayer,
                     "module '" + m +
                         "' exists under src/ but has no row in the layer "
                         "manifest — declare it and its dependencies"});
  }
  for (const ModuleGraph::Edge& e : g.edges) {
    auto it = row_of.find(e.from);
    if (it == row_of.end()) continue;  // reported above
    const std::vector<std::string>& deps = it->second->deps;
    if (std::find(deps.begin(), deps.end(), e.to) != deps.end()) continue;
    bool above = declared_at(e.to) >= declared_at(e.from);
    out.push_back(
        {e.file, e.line, Rule::kArchLayer,
         "module '" + e.from + "' may not depend on '" + e.to + "': " +
             (above ? "'" + e.to + "' is a layer above it"
                    : "the edge is not in its manifest row") +
             " (docs/architecture.layers)"});
  }
  for (const ManifestRow& r : rows) {
    bool module_exists =
        std::find(g.modules.begin(), g.modules.end(), r.module) !=
        g.modules.end();
    if (!module_exists) {
      out.push_back({manifest.path, r.line, Rule::kArchLayer,
                     "manifest declares module '" + r.module +
                         "' but src/ has no such module — delete the row"});
      continue;
    }
    for (const std::string& dep : r.deps) {
      bool realised = std::any_of(
          g.edges.begin(), g.edges.end(), [&](const ModuleGraph::Edge& e) {
            return e.from == r.module && e.to == dep;
          });
      if (!realised)
        out.push_back({manifest.path, r.line, Rule::kArchLayer,
                       "manifest allows '" + r.module + " -> " + dep +
                           "' but no include realises it — the manifest "
                           "must stay exact, delete the stale edge"});
    }
  }

  // -- arch-cycle: DFS over the file-level graph.  Only headers can close
  //    a cycle (nothing includes a .cpp), but every node is walked so the
  //    report names the full path.
  {
    std::vector<int> color(files.size(), 0);  // 0 white, 1 gray, 2 black
    std::vector<std::size_t> stack;
    std::set<std::string> seen_cycles;
    // Iterative DFS with an explicit edge cursor per frame.
    std::vector<std::size_t> cursor(files.size(), 0);
    for (std::size_t root = 0; root < files.size(); ++root) {
      if (color[root] != 0 || files[root].module.empty()) continue;
      stack.push_back(root);
      color[root] = 1;
      while (!stack.empty()) {
        std::size_t u = stack.back();
        if (cursor[u] >= inc[u].size()) {
          color[u] = 2;
          stack.pop_back();
          continue;
        }
        const FileEdge& e = inc[u][cursor[u]++];
        std::size_t v = e.to;
        if (color[v] == 0) {
          color[v] = 1;
          stack.push_back(v);
        } else if (color[v] == 1) {
          // Cycle: the stack from v to u, closed by u -> v.
          auto at = std::find(stack.begin(), stack.end(), v);
          std::vector<std::size_t> cyc(at, stack.end());
          auto smallest = std::min_element(
              cyc.begin(), cyc.end(), [&](std::size_t a, std::size_t b) {
                return files[a].rel < files[b].rel;
              });
          std::rotate(cyc.begin(), smallest, cyc.end());
          std::string path;
          for (std::size_t n : cyc) path += files[n].rel + " -> ";
          path += files[cyc.front()].rel;
          if (seen_cycles.insert(path).second) {
            // Anchor at the first file's include of the next cycle member.
            std::size_t line = 0;
            for (const FileEdge& fe : inc[cyc.front()])
              if (fe.to == cyc[1 % cyc.size()] ||
                  (cyc.size() == 1 && fe.to == cyc.front())) {
                line = fe.line;
                break;
              }
            out.push_back({files[cyc.front()].rel, line, Rule::kArchCycle,
                           "include cycle: " + path});
          }
        }
      }
    }
  }

  // -- Symbol index over src headers.
  struct Exported {
    std::size_t header;  ///< files index.
    std::size_t line;
    bool type_like;
  };
  std::map<std::string, std::vector<Exported>> index;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].module.empty() || !is_header(files[i].src.path)) continue;
    for (const Symbol& s : parse_exports(files[i]))
      index[s.name].push_back({i, s.line, s.type_like});
  }
  // Per-header export lists (deduped names).
  std::map<std::size_t, std::vector<std::string>> exports_of;
  for (const auto& [name, defs] : index)
    for (const Exported& d : defs) {
      auto& v = exports_of[d.header];
      if (std::find(v.begin(), v.end(), name) == v.end())
        v.push_back(name);
    }

  // Locally-declared names per file (any kind), to mute IWYU when a file
  // has its own definition of a name.  Template parameters count: a
  // `template <typename Args>` pack shadows any project symbol of the same
  // name, so its uses are not references to that symbol.
  std::vector<std::set<std::string>> local_decls(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].module.empty()) continue;
    for (const Symbol& s : parse_exports(files[i]))
      local_decls[i].insert(s.name);
    const std::string& text = files[i].text;
    for (std::size_t at = 0; at + 8 < text.size(); ++at) {
      if (at != 0 && ident_char(text[at - 1])) continue;
      std::size_t kw = 0;
      if (text.compare(at, 8, "typename") == 0 && !ident_char(text[at + 8]))
        kw = 8;
      else if (text.compare(at, 5, "class") == 0 && !ident_char(text[at + 5]))
        kw = 5;
      if (kw == 0) continue;
      std::size_t j = skip_ws(text, at + kw);
      if (text.compare(j, 3, "...") == 0) j = skip_ws(text, j + 3);
      std::size_t end = j;
      std::string name = read_ident(text, j, &end);
      if (!name.empty()) local_decls[i].insert(name);
    }
  }

  auto sibling_of = [&](std::size_t header) {
    fs::path p(files[header].src.path);
    fs::path cpp = p.parent_path() / (p.stem().string() + ".cpp");
    std::string want = cpp.generic_string();
    for (std::size_t i = 0; i < files.size(); ++i)
      if (files[i].src.path == want) return i;
    return files.size();
  };

  // -- arch-iwyu + arch-unused-include, per src file.
  for (std::size_t i = 0; i < files.size(); ++i) {
    const ArchFile& f = files[i];
    if (f.module.empty()) continue;
    std::set<std::size_t> direct;
    for (const FileEdge& e : inc[i]) direct.insert(e.to);

    // IWYU: a referenced name with exactly one defining header that is
    // neither this file nor directly included.
    std::vector<Finding> per_file;
    for (const auto& [name, defs] : index) {
      if (defs.size() != 1 || !defs.front().type_like) continue;
      std::size_t h = defs.front().header;
      if (h == i || direct.count(h) != 0) continue;
      if (local_decls[i].count(name) != 0) continue;
      if (f.idents.count(name) == 0) continue;
      std::size_t at = find_word(f.text, name);
      std::string spelled = fs::path(files[h].src.path)
                                .lexically_relative(opts.src_dir)
                                .generic_string();
      per_file.push_back(
          {f.rel, f.line_of(at), Rule::kArchIwyu,
           "'" + name + "' is defined in \"" + spelled +
               "\" which this file does not directly include — relying "
               "on a transitive include breaks when intermediates slim "
               "down; include it directly"});
    }

    // Unused includes: no exported name of the target is referenced.
    fs::path own(f.src.path);
    std::string own_header =
        (own.parent_path() / (own.stem().string() + ".h")).generic_string();
    for (const FileEdge& e : inc[i]) {
      if (files[e.to].src.path == own_header) continue;  // own header
      auto ex = exports_of.find(e.to);
      if (ex == exports_of.end()) continue;  // nothing harvested: no claim
      bool used = std::any_of(
          ex->second.begin(), ex->second.end(),
          [&](const std::string& n) { return f.idents.count(n) != 0; });
      if (!used)
        per_file.push_back(
            {f.rel, e.line, Rule::kArchUnusedInclude,
             "no symbol exported by \"" + e.spelled +
                 "\" is referenced here — delete the include (or include "
                 "what is actually used)"});
    }
    std::vector<Finding> kept = filter_suppressed(f.src, std::move(per_file));
    out.insert(out.end(), std::make_move_iterator(kept.begin()),
               std::make_move_iterator(kept.end()));
  }

  // -- arch-guard: every src header carries #pragma once.
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].module.empty() || !is_header(files[i].src.path)) continue;
    if (files[i].text.find("#pragma once") == std::string::npos)
      out.push_back({files[i].rel, 1, Rule::kArchGuard,
                     "header has no #pragma once — double inclusion is a "
                     "latent ODR break"});
  }

  // -- arch-dead-api: exported names nobody outside the header (and its
  //    own .cpp) references, across src/ and every usage tree.
  for (const auto& [name, defs] : index) {
    if (defs.size() != 1) continue;  // shared names: any use is ambiguous
    const Exported& d = defs.front();
    std::size_t sib = sibling_of(d.header);
    bool referenced = false;
    for (std::size_t i = 0; i < files.size() && !referenced; ++i) {
      if (i == d.header || i == sib) continue;
      if (files[i].idents.count(name) != 0) referenced = true;
    }
    if (referenced) continue;
    std::vector<Finding> one;
    one.push_back(
        {files[d.header].rel, d.line, Rule::kArchDeadApi,
         "'" + name + "' is public API of " + files[d.header].rel +
             " but no other file in src/, tests/, tools/, examples/ or "
             "bench/ references it — delete it or cover it with a test"});
    std::vector<Finding> kept =
        filter_suppressed(files[d.header].src, std::move(one));
    out.insert(out.end(), kept.begin(), kept.end());
  }

  // -- Reasoned suppressions, for every rule in the family: a finding
  //    anchored in a source file honours that file's allow() comments, and
  //    manifest-anchored findings honour trailing `# its-lint: allow(...)`
  //    tags on their own line.  (Repeat filtering is idempotent; the
  //    per-finding filters above only pre-trim their own loops.)
  {
    std::map<std::string, std::size_t> by_rel;
    for (std::size_t i = 0; i < files.size(); ++i) by_rel[files[i].rel] = i;
    std::map<std::string, std::vector<Finding>> grouped;
    std::vector<Finding> rest;
    for (Finding& fi : out) {
      if (fi.file == manifest.path || by_rel.count(fi.file) != 0)
        grouped[fi.file].push_back(std::move(fi));
      else
        rest.push_back(std::move(fi));
    }
    out = std::move(rest);
    for (auto& [file, group] : grouped) {
      const SourceFile& src =
          file == manifest.path ? manifest : files[by_rel[file]].src;
      std::vector<Finding> kept = filter_suppressed(src, std::move(group));
      out.insert(out.end(), std::make_move_iterator(kept.begin()),
                 std::make_move_iterator(kept.end()));
    }
  }

  return out;
}

}  // namespace its::lint
